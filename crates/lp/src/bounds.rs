//! Bounded-variable machinery: the computational standard form and the
//! float-first **bounded revised simplex**.
//!
//! # Standard form
//!
//! [`StandardForm`] rewrites `min c·x  s.t.  rows, 0 ≤ x ≤ u` into
//! `min c·x  s.t.  A·x = b, 0 ≤ x ≤ u, b ≥ 0` by normalizing row signs and
//! appending slack/surplus/artificial columns, kept **column-major and
//! sparse** throughout. The construction is generic over the scalar and
//! deterministic, so the `f64` search and the exact verifier build
//! *structurally identical* forms and a basis found by one is meaningful to
//! the other.
//!
//! # Bounded revised simplex
//!
//! [`solve_bounded_f64`] runs a two-phase revised simplex in which variable
//! bounds never become rows: a nonbasic variable rests at **either** bound
//! ([`VarState::AtLower`]/[`VarState::AtUpper`]), the ratio test considers
//! the entering variable's own opposite bound (a **bound flip** — the
//! iteration that changes no basis column at all), and leaving variables
//! exit to whichever bound the ratio test hit. The basis is maintained as a
//! periodically-refactorized [`SparseLu`] plus product-form eta updates, so
//! an iteration costs `O(nnz)`-ish instead of the dense tableau's
//! `O(m·cols)`.
//!
//! The float pass never certifies anything: its terminal
//! [`basis`](BoundedBasis::basis)/[`state`](BoundedBasis::state) proposal is
//! re-verified exactly (see [`crate::simplex::solve_revised`]), and any
//! numerical mishap here merely costs a fallback to the exact solver.

#![allow(clippy::needless_range_loop)] // index loops mirror the simplex math

use crate::lu::SparseLu;
use crate::model::{Cmp, LpProblem};
use crate::scalar::Scalar;

/// Entering tolerance on reduced costs.
const ENTER_TOL: f64 = 1e-9;
/// Minimum magnitude for a ratio-test pivot element.
const PIV_TOL: f64 = 1e-7;
/// Consecutive degenerate iterations before switching to Bland's rule.
const DEGENERATE_SWITCH: usize = 64;
/// Eta-file length that triggers a refactorization.
const REFACTOR_EVERY: usize = 64;

/// Where a variable currently rests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarState {
    /// In the basis.
    Basic,
    /// Nonbasic at its lower bound (always 0 here).
    AtLower,
    /// Nonbasic at its finite upper bound.
    AtUpper,
}

/// Outcome classification of the float pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundedStatus {
    /// The pass believes the terminal basis is optimal.
    Optimal,
    /// Phase 1 could not zero the artificials.
    Infeasible,
    /// Phase 2 found an unbounded ray.
    Unbounded,
    /// The pass gave up (iteration cap, singular refactorization). Callers
    /// must fall back to an exact solve; this is never a verdict.
    Stalled,
}

/// Terminal basis proposal of the float pass.
#[derive(Debug, Clone)]
pub struct BoundedBasis {
    /// Outcome.
    pub status: BoundedStatus,
    /// Basic column per row (meaningful when `Optimal`).
    pub basis: Vec<usize>,
    /// Resting state of every standard-form column (meaningful when
    /// `Optimal`).
    pub state: Vec<VarState>,
}

/// The equality standard form `min c·x, A·x = b, 0 ≤ x ≤ u` of an
/// [`LpProblem`], column-major.
#[derive(Debug, Clone)]
pub struct StandardForm<S> {
    /// Rows.
    pub m: usize,
    /// Total columns (structural + slack/surplus + artificial).
    pub ncols: usize,
    /// Structural columns (`0..nstruct` are the problem's variables).
    pub nstruct: usize,
    /// Sparse columns, each sorted by row.
    pub cols: Vec<Vec<(usize, S)>>,
    /// Phase-2 objective (0 on auxiliary columns).
    pub cost: Vec<S>,
    /// Per-column finite upper bound (`None` = +∞). Lower bounds are 0.
    pub upper: Vec<Option<S>>,
    /// Right-hand side, normalized nonnegative.
    pub b: Vec<S>,
    /// Which columns are artificials.
    pub artificial: Vec<bool>,
    /// Number of artificial columns.
    pub n_art: usize,
    /// Whether the original row was sign-flipped during normalization.
    pub row_flip: Vec<bool>,
    /// The all-slack/artificial starting basis (one column per row).
    pub init_basis: Vec<usize>,
}

impl<S: Scalar> StandardForm<S> {
    /// Builds the standard form of `lp` (implicit variable bounds stay
    /// bounds; they are *not* materialized as rows).
    pub fn build(lp: &LpProblem<S>) -> StandardForm<S> {
        let n = lp.num_vars();
        let m = lp.num_constraints();
        let mut cols: Vec<Vec<(usize, S)>> = vec![Vec::new(); n];
        let mut b = Vec::with_capacity(m);
        let mut row_flip = Vec::with_capacity(m);
        // Structural entries, visiting rows in order keeps columns sorted.
        let mut senses: Vec<Cmp> = Vec::with_capacity(m);
        for (i, c) in lp.constraints().iter().enumerate() {
            let flip = c.rhs.is_neg();
            let sgn = if flip { S::one().neg() } else { S::one() };
            for (v, coef) in &c.terms {
                let val = sgn.mul(coef);
                match cols[*v].last_mut() {
                    Some(last) if last.0 == i => last.1 = last.1.add(&val),
                    _ => cols[*v].push((i, val)),
                }
            }
            for col in c.terms.iter().map(|t| t.0) {
                if let Some(last) = cols[col].last() {
                    if last.0 == i && last.1.is_zero_s() {
                        cols[col].pop();
                    }
                }
            }
            b.push(sgn.mul(&c.rhs));
            row_flip.push(flip);
            senses.push(match (c.cmp, flip) {
                (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
                (Cmp::Ge, false) | (Cmp::Le, true) => Cmp::Ge,
                (Cmp::Eq, _) => Cmp::Eq,
            });
        }
        let mut cost: Vec<S> = lp.objective().to_vec();
        let mut upper: Vec<Option<S>> = (0..n).map(|v| lp.upper(v).cloned()).collect();
        let mut artificial = vec![false; n];
        // Slack/surplus columns, then artificials, in row order (mirrors
        // the dense builder's layout).
        let mut init_basis = vec![usize::MAX; m];
        for (i, sense) in senses.iter().enumerate() {
            let aux = match sense {
                Cmp::Le => Some((S::one(), true)),        // slack, starts basic
                Cmp::Ge => Some((S::one().neg(), false)), // surplus
                Cmp::Eq => None,
            };
            if let Some((coef, basic)) = aux {
                cols.push(vec![(i, coef)]);
                cost.push(S::zero());
                upper.push(None);
                artificial.push(false);
                if basic {
                    init_basis[i] = cols.len() - 1;
                }
            }
        }
        let mut n_art = 0;
        for (i, sense) in senses.iter().enumerate() {
            if matches!(sense, Cmp::Ge | Cmp::Eq) {
                cols.push(vec![(i, S::one())]);
                cost.push(S::zero());
                upper.push(None);
                artificial.push(true);
                init_basis[i] = cols.len() - 1;
                n_art += 1;
            }
        }
        let ncols = cols.len();
        debug_assert_eq!(cost.len(), ncols);
        debug_assert_eq!(upper.len(), ncols);
        debug_assert!(init_basis.iter().all(|&c| c != usize::MAX));
        StandardForm {
            m,
            ncols,
            nstruct: n,
            cols,
            cost,
            upper,
            b,
            artificial,
            n_art,
            row_flip,
            init_basis,
        }
    }
}

/// Iteration cap (termination safety net, mirrors the dense solver's).
fn iteration_cap(rows: usize, cols: usize) -> usize {
    10_000 + 64 * (rows + cols)
}

/// The revised-simplex working state over a `StandardForm<f64>`.
struct Rev<'a> {
    sf: &'a StandardForm<f64>,
    basis: Vec<usize>,
    state: Vec<VarState>,
    /// Basic values, parallel to `basis`.
    xb: Vec<f64>,
    lu: SparseLu<f64>,
    /// Product-form updates since the last refactorization: `(basis
    /// position, w = B⁻¹·A_enter at update time)`, sparse.
    etas: Vec<(usize, Vec<(usize, f64)>)>,
    barred: Vec<bool>,
}

enum StepOutcome {
    Optimal,
    Unbounded,
    Stalled,
}

impl<'a> Rev<'a> {
    fn new(sf: &'a StandardForm<f64>) -> Option<Rev<'a>> {
        let basis = sf.init_basis.clone();
        let mut state = vec![VarState::AtLower; sf.ncols];
        for &j in &basis {
            state[j] = VarState::Basic;
        }
        let lu = Self::factor(sf, &basis)?;
        let mut rev = Rev {
            sf,
            basis,
            state,
            xb: Vec::new(),
            lu,
            etas: Vec::new(),
            barred: vec![false; sf.ncols],
        };
        rev.recompute_xb();
        Some(rev)
    }

    fn factor(sf: &StandardForm<f64>, basis: &[usize]) -> Option<SparseLu<f64>> {
        let cols: Vec<Vec<(usize, f64)>> = basis.iter().map(|&j| sf.cols[j].clone()).collect();
        SparseLu::factor(sf.m, &cols)
    }

    /// `xb = B⁻¹·(b − Σ_{j at upper} u_j·A_j)` from scratch.
    fn recompute_xb(&mut self) {
        let mut rhs = self.sf.b.clone();
        for j in 0..self.sf.ncols {
            if self.state[j] == VarState::AtUpper {
                let u = self.sf.upper[j].expect("AtUpper implies a finite bound");
                for &(i, v) in &self.sf.cols[j] {
                    rhs[i] -= u * v;
                }
            }
        }
        self.xb = self.ftran(&rhs);
    }

    fn ftran(&self, v: &[f64]) -> Vec<f64> {
        let mut x = self.lu.solve(v);
        for (r, w) in &self.etas {
            let wr = w
                .iter()
                .find(|(i, _)| i == r)
                .map(|&(_, v)| v)
                .expect("eta stores its pivot entry");
            let t = x[*r] / wr;
            for &(i, wi) in w {
                if i != *r {
                    x[i] -= wi * t;
                }
            }
            x[*r] = t;
        }
        x
    }

    fn btran(&self, c: &[f64]) -> Vec<f64> {
        let mut c = c.to_vec();
        for (r, w) in self.etas.iter().rev() {
            let mut acc = 0.0;
            let mut wr = f64::NAN;
            for &(i, wi) in w {
                if i == *r {
                    wr = wi;
                } else {
                    acc += c[i] * wi;
                }
            }
            c[*r] = (c[*r] - acc) / wr;
        }
        self.lu.solve_transposed(&c)
    }

    fn refactor(&mut self) -> bool {
        match Self::factor(self.sf, &self.basis) {
            Some(lu) => {
                self.lu = lu;
                self.etas.clear();
                self.recompute_xb();
                true
            }
            None => false,
        }
    }

    /// Runs the simplex loop for the cost vector `cost`. With
    /// `freeze_artificials` (phase 2), basic artificials are treated as
    /// having upper bound 0 in the ratio test, so no pivot can ever move
    /// them off zero — without it a cost-0 artificial could silently
    /// re-absorb constraint violation.
    fn optimize(&mut self, cost: &[f64], freeze_artificials: bool) -> StepOutcome {
        let m = self.sf.m;
        let mut bland = false;
        let mut degenerate_run = 0usize;
        let cap = iteration_cap(m, self.sf.ncols);
        for _ in 0..cap {
            // Simplex multipliers for the current basis.
            let cb: Vec<f64> = self.basis.iter().map(|&j| cost[j]).collect();
            let y = self.btran(&cb);
            // Pricing: most negative "effective" reduced cost (at-upper
            // candidates improve by *increasing* their reduced cost, so
            // their effective direction is the negation).
            let mut enter: Option<(usize, f64)> = None;
            for j in 0..self.sf.ncols {
                if self.state[j] == VarState::Basic || self.barred[j] {
                    continue;
                }
                let mut d = cost[j];
                for &(i, v) in &self.sf.cols[j] {
                    d -= y[i] * v;
                }
                let eff = match self.state[j] {
                    VarState::AtLower => d,
                    VarState::AtUpper => -d,
                    VarState::Basic => unreachable!(),
                };
                if eff < -ENTER_TOL {
                    let better = match &enter {
                        None => true,
                        Some((bj, beff)) => {
                            if bland {
                                j < *bj
                            } else {
                                eff < *beff
                            }
                        }
                    };
                    if better {
                        enter = Some((j, eff));
                        if bland {
                            break;
                        }
                    }
                }
            }
            let Some((q, _)) = enter else {
                return StepOutcome::Optimal;
            };
            // Direction: +1 when rising from the lower bound, −1 when
            // descending from the upper.
            let sigma = if self.state[q] == VarState::AtLower {
                1.0
            } else {
                -1.0
            };
            let mut aq = vec![0.0; m];
            for &(i, v) in &self.sf.cols[q] {
                aq[i] = v;
            }
            let w = self.ftran(&aq);
            // Ratio test: basic variables hitting a bound vs the entering
            // variable's own bound span (a flip).
            let mut t_best = self.sf.upper[q].unwrap_or(f64::INFINITY);
            let mut leave: Option<(usize, bool, f64)> = None; // (row, to_upper, |w_r|)
            for i in 0..m {
                let d = sigma * w[i];
                if d > PIV_TOL {
                    let t = (self.xb[i].max(0.0)) / d;
                    let tie = leave.is_some() && (t - t_best).abs() <= 1e-12;
                    if t < t_best - 1e-12 || (tie && leave.map(|l| d.abs() > l.2) == Some(true)) {
                        t_best = t;
                        leave = Some((i, false, d.abs()));
                    }
                } else if d < -PIV_TOL {
                    let ub = if freeze_artificials && self.sf.artificial[self.basis[i]] {
                        Some(0.0)
                    } else {
                        self.sf.upper[self.basis[i]]
                    };
                    if let Some(u) = ub {
                        let t = (u - self.xb[i]).max(0.0) / -d;
                        let tie = leave.is_some() && (t - t_best).abs() <= 1e-12;
                        if t < t_best - 1e-12 || (tie && leave.map(|l| d.abs() > l.2) == Some(true))
                        {
                            t_best = t;
                            leave = Some((i, true, d.abs()));
                        }
                    }
                }
            }
            if t_best.is_infinite() {
                return StepOutcome::Unbounded;
            }
            if t_best <= ENTER_TOL {
                degenerate_run += 1;
                if degenerate_run >= DEGENERATE_SWITCH {
                    bland = true;
                }
            } else {
                degenerate_run = 0;
            }
            match leave {
                None => {
                    // Bound flip: no basis change, the entering variable
                    // jumps to its opposite bound.
                    let t = t_best;
                    for i in 0..m {
                        self.xb[i] -= sigma * t * w[i];
                    }
                    self.state[q] = match self.state[q] {
                        VarState::AtLower => VarState::AtUpper,
                        VarState::AtUpper => VarState::AtLower,
                        VarState::Basic => unreachable!(),
                    };
                }
                Some((r, to_upper, _)) => {
                    let t = t_best;
                    let lvar = self.basis[r];
                    for i in 0..m {
                        if i != r {
                            self.xb[i] -= sigma * t * w[i];
                        }
                    }
                    self.xb[r] = if sigma > 0.0 {
                        t
                    } else {
                        self.sf.upper[q].expect("descending from a finite bound") - t
                    };
                    // A frozen artificial "leaves to its upper bound" of 0,
                    // which is its lower bound: record AtLower.
                    self.state[lvar] = if to_upper && !self.sf.artificial[lvar] {
                        VarState::AtUpper
                    } else {
                        VarState::AtLower
                    };
                    self.basis[r] = q;
                    self.state[q] = VarState::Basic;
                    let sparse_w: Vec<(usize, f64)> = w
                        .iter()
                        .enumerate()
                        .filter(|&(i, &v)| i == r || v.abs() > 1e-12)
                        .map(|(i, &v)| (i, v))
                        .collect();
                    self.etas.push((r, sparse_w));
                    if self.etas.len() >= REFACTOR_EVERY && !self.refactor() {
                        return StepOutcome::Stalled;
                    }
                }
            }
        }
        StepOutcome::Stalled
    }
}

/// Two-phase bounded revised simplex over a `StandardForm<f64>`. The result
/// is a *proposal*: callers must verify `Optimal` outcomes exactly and must
/// treat every other status as "rerun exactly".
pub fn solve_bounded_f64(sf: &StandardForm<f64>) -> BoundedBasis {
    let stalled = BoundedBasis {
        status: BoundedStatus::Stalled,
        basis: Vec::new(),
        state: Vec::new(),
    };
    let Some(mut rev) = Rev::new(sf) else {
        return stalled;
    };
    if sf.n_art > 0 {
        let cost1: Vec<f64> = (0..sf.ncols)
            .map(|j| if sf.artificial[j] { 1.0 } else { 0.0 })
            .collect();
        match rev.optimize(&cost1, false) {
            StepOutcome::Optimal => {}
            // Phase 1 is bounded below by 0; treat anything else as a stall.
            StepOutcome::Unbounded | StepOutcome::Stalled => return stalled,
        }
        let infeasibility: f64 = rev
            .basis
            .iter()
            .zip(&rev.xb)
            .filter(|(&j, _)| sf.artificial[j])
            .map(|(_, &v)| v.max(0.0))
            .sum();
        if infeasibility > 1e-7 {
            return BoundedBasis {
                status: BoundedStatus::Infeasible,
                basis: rev.basis,
                state: rev.state,
            };
        }
        for j in 0..sf.ncols {
            if sf.artificial[j] {
                rev.barred[j] = true;
            }
        }
    }
    match rev.optimize(&sf.cost, true) {
        StepOutcome::Optimal => BoundedBasis {
            status: BoundedStatus::Optimal,
            basis: rev.basis,
            state: rev.state,
        },
        StepOutcome::Unbounded => BoundedBasis {
            status: BoundedStatus::Unbounded,
            basis: rev.basis,
            state: rev.state,
        },
        StepOutcome::Stalled => stalled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, LpProblem};

    fn sf(lp: &LpProblem<f64>) -> StandardForm<f64> {
        StandardForm::build(lp)
    }

    #[test]
    fn standard_form_shapes() {
        let mut lp: LpProblem<f64> = LpProblem::new();
        let x = lp.add_var(1.0);
        let y = lp.add_var(-1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0);
        lp.add_constraint(vec![(y, 1.0)], Cmp::Eq, 2.0);
        lp.set_upper(y, 3.0);
        let s = sf(&lp);
        assert_eq!(s.m, 3);
        assert_eq!(s.nstruct, 2);
        // slack(row0) + surplus(row1) + artificials(rows 1, 2)
        assert_eq!(s.ncols, 2 + 2 + 2);
        assert_eq!(s.n_art, 2);
        assert_eq!(s.upper[y], Some(3.0));
        assert!(s.artificial[4] && s.artificial[5]);
        assert_eq!(s.init_basis[0], 2); // slack
        assert_eq!(s.init_basis[1], 4); // artificial
        assert_eq!(s.init_basis[2], 5); // artificial
    }

    #[test]
    fn negative_rhs_flips() {
        let mut lp: LpProblem<f64> = LpProblem::new();
        let x = lp.add_var(1.0);
        lp.add_constraint(vec![(x, -1.0)], Cmp::Le, -3.0); // x ≥ 3
        let s = sf(&lp);
        assert!(s.row_flip[0]);
        assert_eq!(s.b[0], 3.0);
        assert_eq!(s.cols[x], vec![(0, 1.0)]);
        assert_eq!(s.n_art, 1);
    }

    #[test]
    fn repeated_terms_are_summed() {
        let mut lp: LpProblem<f64> = LpProblem::new();
        let x = lp.add_var(1.0);
        lp.add_constraint(vec![(x, 1.0), (x, 2.0)], Cmp::Le, 6.0);
        let s = sf(&lp);
        assert_eq!(s.cols[x], vec![(0, 3.0)]);
    }

    #[test]
    fn bounded_solver_uses_bound_flips() {
        // min −x  s.t.  x + y ≤ 10, x ≤ 5 implicit: optimum x = 5 reached
        // by a single bound flip (the slack never leaves the basis).
        let mut lp: LpProblem<f64> = LpProblem::new();
        let x = lp.add_var(-1.0);
        let y = lp.add_var(0.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 10.0);
        lp.set_upper(x, 5.0);
        let s = sf(&lp);
        let out = solve_bounded_f64(&s);
        assert_eq!(out.status, BoundedStatus::Optimal);
        assert_eq!(out.state[x], VarState::AtUpper);
        // The slack stayed basic: no pivot happened at all.
        assert_eq!(out.basis, s.init_basis);
    }

    #[test]
    fn bounded_solver_detects_infeasible_and_unbounded() {
        let mut inf: LpProblem<f64> = LpProblem::new();
        let x = inf.add_var(1.0);
        inf.add_constraint(vec![(x, 1.0)], Cmp::Ge, 3.0);
        inf.set_upper(x, 1.0);
        assert_eq!(
            solve_bounded_f64(&sf(&inf)).status,
            BoundedStatus::Infeasible
        );

        let mut unb: LpProblem<f64> = LpProblem::new();
        let x = unb.add_var(-1.0);
        unb.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0);
        assert_eq!(
            solve_bounded_f64(&sf(&unb)).status,
            BoundedStatus::Unbounded
        );
    }
}

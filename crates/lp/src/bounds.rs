//! Bounded-variable machinery: the computational standard form and the
//! float-first **bounded revised simplex** with Schrage-style variable
//! upper bounds (VUBs).
//!
//! # Standard form
//!
//! [`StandardForm`] rewrites `min c·x  s.t.  rows, 0 ≤ x ≤ u, x_j ≤ x_{k(j)}`
//! into `min c·x  s.t.  A·x = b, 0 ≤ x ≤ u, b ≥ 0` (VUBs carried as side
//! metadata, never rows) by normalizing row signs and appending
//! slack/surplus/artificial columns, kept **column-major and sparse**
//! throughout. The construction is generic over the scalar and
//! deterministic, so the `f64` search and the exact verifier build
//! *structurally identical* forms and a basis found by one is meaningful to
//! the other. One normalization keeps the VUB pivoting rules simple: a
//! variable carrying **both** a VUB and a finite constant bound gets its
//! constant bound materialized as a trailing `≤` row, so VUB dependents
//! never have finite constant bounds of their own.
//!
//! # Bounded revised simplex
//!
//! [`solve_bounded_f64`] runs a two-phase revised simplex in which neither
//! constant bounds nor VUBs become rows. A nonbasic variable rests at a
//! bound ([`VarState::AtLower`]/[`VarState::AtUpper`]) **or glued to its
//! VUB key** ([`VarState::AtVub`], value identically equal to the key's).
//! The resting-state invariants:
//!
//! * a dependent glued to a **nonbasic** key behaves exactly like a
//!   variable at a constant bound equal to the key's resting value — only
//!   the right-hand-side adjustment sees it;
//! * a dependent glued to a **basic** key rides inside the basis: the
//!   key's basis column is the *augmented* column `A_k + Σ_{glued j} A_j`
//!   (Schrage's key column), and the key's basic cost is likewise
//!   `c_k + Σ_{glued j} c_j`. A VUB row therefore never enters the basis;
//! * the ratio test bounds every step by constant bounds, by VUBs against
//!   nonbasic keys (plain ceilings), and by VUBs between two basic
//!   variables or against the entering key (pairwise rates);
//! * iterations that change a family's glued set under a *basic* key
//!   change the augmented key column — the basis *matrix* itself, not just
//!   which columns are basic. Each such change is the rank-one update
//!   `B ← B ± A_col·e_p^T`, absorbed by the product-form file as the eta
//!   `(p, ±B⁻¹A_col + e_p)`; the ratio test's den/rate thresholds
//!   guarantee those eta pivots are well-conditioned, so a full
//!   refactorization is only the fallback (and the periodic
//!   length/fill-triggered refresh), never the per-event rule.
//!
//! Pricing uses a rotating **partial-pricing** window
//! ([`BoundedOptions::pricing_window`]): a window of columns is priced per
//! iteration and the sweep only degrades to a full Dantzig pass when every
//! window in the cycle is optimal (Bland's anti-cycling rule always scans
//! in full). The rotation doubles as diversification: always chasing the
//! single most negative reduced cost concentrates pivots in one VUB family
//! and multiplies degenerate glue/unglue churn.
//!
//! The float pass never certifies anything: its terminal
//! [`basis`](BoundedBasis::basis)/[`state`](BoundedBasis::state) proposal is
//! re-verified exactly (see [`crate::simplex::solve_revised`]), and any
//! numerical mishap here merely costs a fallback to the exact solver.
//!
//! # Scratch space
//!
//! Every dense `f64` work vector of the iteration (entering-column image,
//! simplex-multiplier cost stub, recomputed right-hand sides, the
//! per-pivot FTRAN/BTRAN solutions via [`SparseLu::solve_pooled`] /
//! [`SparseLu::solve_transposed_pooled`], eta temporaries) and every
//! product-form eta column is checked out of the per-thread
//! [`SolveArena`] and given back when the solve finishes — capacity
//! survives to the next solve on the thread, so a caller sweeping
//! thousands of small component LPs (the decomposition layer in
//! `abt-active`) stops churning the global allocator.

#![allow(clippy::needless_range_loop)] // index loops mirror the simplex math

use crate::arena::SolveArena;
use crate::lu::SparseLu;
use crate::model::{Cmp, LpProblem};
use crate::scalar::Scalar;
use crate::warm::BasisSnapshot;
use abt_core::error::BudgetKind;
use abt_core::faultinject;
use std::time::{Duration, Instant};

/// Entering tolerance on reduced costs.
const ENTER_TOL: f64 = 1e-9;
/// Minimum magnitude for a ratio-test pivot element.
const PIV_TOL: f64 = 1e-7;
/// Consecutive degenerate iterations before switching to Bland's rule.
const DEGENERATE_SWITCH: usize = 64;
/// Eta-file length that triggers a refactorization.
const REFACTOR_EVERY: usize = 128;
/// Eta-file *fill* budget, as a multiple of the row count: product-form
/// updates get denser as the file grows (each eta is an FTRAN image of an
/// entering column), so refactorization also triggers once applying the
/// file costs more than a handful of dense passes.
const ETA_NNZ_PER_ROW: usize = 12;
/// Primal-feasibility tolerance of the warm-start install check (mirrors
/// the phase-1 infeasibility threshold): a snapshot whose recomputed basic
/// values violate a bound by more than this cannot seed a primal phase-2
/// run and falls back to the cold two-phase solve.
const WARM_FEAS_TOL: f64 = 1e-7;

/// Where a variable currently rests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarState {
    /// In the basis.
    Basic,
    /// Nonbasic at its lower bound (always 0 here).
    AtLower,
    /// Nonbasic at its finite upper bound.
    AtUpper,
    /// Nonbasic glued to its VUB key: the variable's value *is* the key's
    /// value (0, the key's constant bound, or the key's basic value).
    AtVub,
}

/// Outcome classification of the float pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundedStatus {
    /// The pass believes the terminal basis is optimal.
    Optimal,
    /// Phase 1 could not zero the artificials.
    Infeasible,
    /// Phase 2 found an unbounded ray.
    Unbounded,
    /// The pass gave up (iteration cap, singular refactorization). Callers
    /// must fall back to an exact solve; this is never a verdict.
    Stalled,
    /// The pass exhausted one of its [`BoundedOptions`] solve budgets
    /// before reaching a verdict. Like `Stalled`, never a verdict — but
    /// callers should *not* silently fall back to an exact solve (which
    /// has no cheaper tier to charge the budget to); supervisors surface
    /// it as [`abt_core::error::SolveFailure::BudgetExceeded`] instead.
    Budget(BudgetKind),
}

/// Tuning knobs of the float pass.
#[derive(Debug, Clone, Copy)]
pub struct BoundedOptions {
    /// Columns priced per partial-pricing window; `0` disables partial
    /// pricing (every iteration runs a full Dantzig sweep).
    pub pricing_window: usize,
    /// Basis-changing pivot budget across both phases; `0` = unlimited.
    /// On exhaustion the pass stops with [`BoundedStatus::Budget`]
    /// instead of spinning (active-time is NP-complete, so no exact tier
    /// can promise termination on adversarial inputs without a budget).
    pub pivot_budget: u64,
    /// LU-refactorization budget across both phases; `0` = unlimited.
    pub refactor_budget: u64,
    /// Wall-clock budget. Applies per stage: the float pass measures from
    /// its own entry, and the exact certifier (see
    /// [`crate::simplex`]) starts a fresh clock of the same length —
    /// enforcement points are the pivot loop (checked every
    /// [`TIME_CHECK_EVERY`] iterations) and the certifier's staged
    /// checkpoints. `None` = unlimited.
    pub time_budget: Option<Duration>,
}

impl Default for BoundedOptions {
    fn default() -> Self {
        BoundedOptions {
            pricing_window: DEFAULT_PRICING_WINDOW,
            pivot_budget: 0,
            refactor_budget: 0,
            time_budget: None,
        }
    }
}

impl BoundedOptions {
    /// The deadline a stage starting *now* must finish by (`None` =
    /// unbudgeted).
    pub(crate) fn stage_deadline(&self) -> Option<Instant> {
        self.time_budget.map(|d| Instant::now() + d)
    }
}

/// How many pivot-loop iterations pass between wall-clock reads when a
/// [`BoundedOptions::time_budget`] is set (an `Instant::now()` call is
/// tens of nanoseconds against microsecond-scale iterations, but there is
/// no reason to pay it every iteration).
pub const TIME_CHECK_EVERY: u64 = 64;

/// Default partial-pricing window (see [`BoundedOptions::pricing_window`]).
pub const DEFAULT_PRICING_WINDOW: usize = 256;

/// Terminal basis proposal of the float pass.
#[derive(Debug, Clone)]
pub struct BoundedBasis {
    /// Outcome.
    pub status: BoundedStatus,
    /// Basic column per row (meaningful when `Optimal`).
    pub basis: Vec<usize>,
    /// Resting state of every standard-form column (meaningful when
    /// `Optimal`).
    pub state: Vec<VarState>,
    /// Basis-changing pivots performed.
    pub pivots: u64,
    /// Bound/VUB flips performed (iterations with no basis change).
    pub bound_flips: u64,
    /// LU refactorizations (periodic and VUB-structural).
    pub refactorizations: u64,
}

/// The equality standard form `min c·x, A·x = b, 0 ≤ x ≤ u` of an
/// [`LpProblem`], column-major, with VUBs as side metadata.
#[derive(Debug, Clone)]
pub struct StandardForm<S> {
    /// Rows (original constraints plus any promoted constant-bound rows of
    /// VUB dependents).
    pub m: usize,
    /// Total columns (structural + slack/surplus + artificial).
    pub ncols: usize,
    /// Structural columns (`0..nstruct` are the problem's variables).
    pub nstruct: usize,
    /// Sparse columns, each sorted by row.
    pub cols: Vec<Vec<(usize, S)>>,
    /// Phase-2 objective (0 on auxiliary columns).
    pub cost: Vec<S>,
    /// Per-column finite upper bound (`None` = +∞). Lower bounds are 0.
    /// Always `None` on columns that carry a VUB (see the module docs).
    pub upper: Vec<Option<S>>,
    /// Per-column VUB key (`None` on keys, plain columns, and auxiliaries).
    pub vub: Vec<Option<usize>>,
    /// Right-hand side, normalized nonnegative.
    pub b: Vec<S>,
    /// Which columns are artificials.
    pub artificial: Vec<bool>,
    /// Number of artificial columns.
    pub n_art: usize,
    /// Whether the original row was sign-flipped during normalization.
    pub row_flip: Vec<bool>,
    /// The all-slack/artificial starting basis (one column per row).
    pub init_basis: Vec<usize>,
}

impl<S: Scalar> StandardForm<S> {
    /// Builds the standard form of `lp` (implicit variable bounds and VUBs
    /// stay implicit; they are *not* materialized as rows — except the
    /// constant bound of a variable that also carries a VUB, which becomes
    /// a trailing `≤` row so dependents never have two upper bounds).
    pub fn build(lp: &LpProblem<S>) -> StandardForm<S> {
        let n = lp.num_vars();
        // Constant bounds of VUB dependents get promoted to rows.
        let promoted: Vec<(usize, S)> = (0..n)
            .filter(|&v| lp.vub(v).is_some())
            .filter_map(|v| lp.upper(v).map(|u| (v, u.clone())))
            .collect();
        let m = lp.num_constraints() + promoted.len();
        let mut cols: Vec<Vec<(usize, S)>> = vec![Vec::new(); n];
        let mut b = Vec::with_capacity(m);
        let mut row_flip = Vec::with_capacity(m);
        // Structural entries, visiting rows in order keeps columns sorted.
        let mut senses: Vec<Cmp> = Vec::with_capacity(m);
        for (i, c) in lp.constraints().iter().enumerate() {
            let flip = c.rhs.is_neg();
            let sgn = if flip { S::one().neg() } else { S::one() };
            for (v, coef) in &c.terms {
                let val = sgn.mul(coef);
                match cols[*v].last_mut() {
                    Some(last) if last.0 == i => last.1 = last.1.add(&val),
                    _ => cols[*v].push((i, val)),
                }
            }
            for col in c.terms.iter().map(|t| t.0) {
                if let Some(last) = cols[col].last() {
                    if last.0 == i && last.1.is_zero_s() {
                        cols[col].pop();
                    }
                }
            }
            b.push(sgn.mul(&c.rhs));
            row_flip.push(flip);
            senses.push(match (c.cmp, flip) {
                (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
                (Cmp::Ge, false) | (Cmp::Le, true) => Cmp::Ge,
                (Cmp::Eq, _) => Cmp::Eq,
            });
        }
        // Promoted bound rows `x_v ≤ u` (rhs ≥ 0 by construction).
        for (v, u) in &promoted {
            let i = b.len();
            cols[*v].push((i, S::one()));
            b.push(u.clone());
            row_flip.push(false);
            senses.push(Cmp::Le);
        }
        let mut cost: Vec<S> = lp.objective().to_vec();
        let mut upper: Vec<Option<S>> = (0..n)
            .map(|v| {
                if lp.vub(v).is_some() {
                    None // promoted to a row above
                } else {
                    lp.upper(v).cloned()
                }
            })
            .collect();
        let mut vub: Vec<Option<usize>> = (0..n).map(|v| lp.vub(v)).collect();
        let mut artificial = vec![false; n];
        // Slack/surplus columns, then artificials, in row order (mirrors
        // the dense builder's layout).
        let mut init_basis = vec![usize::MAX; m];
        for (i, sense) in senses.iter().enumerate() {
            let aux = match sense {
                Cmp::Le => Some((S::one(), true)),        // slack, starts basic
                Cmp::Ge => Some((S::one().neg(), false)), // surplus
                Cmp::Eq => None,
            };
            if let Some((coef, basic)) = aux {
                cols.push(vec![(i, coef)]);
                cost.push(S::zero());
                upper.push(None);
                vub.push(None);
                artificial.push(false);
                if basic {
                    init_basis[i] = cols.len() - 1;
                }
            }
        }
        let mut n_art = 0;
        for (i, sense) in senses.iter().enumerate() {
            if matches!(sense, Cmp::Ge | Cmp::Eq) {
                cols.push(vec![(i, S::one())]);
                cost.push(S::zero());
                upper.push(None);
                vub.push(None);
                artificial.push(true);
                init_basis[i] = cols.len() - 1;
                n_art += 1;
            }
        }
        let ncols = cols.len();
        debug_assert_eq!(cost.len(), ncols);
        debug_assert_eq!(upper.len(), ncols);
        debug_assert!(init_basis.iter().all(|&c| c != usize::MAX));
        StandardForm {
            m,
            ncols,
            nstruct: n,
            cols,
            cost,
            upper,
            vub,
            b,
            artificial,
            n_art,
            row_flip,
            init_basis,
        }
    }
}

/// Iteration cap (termination safety net, mirrors the dense solver's).
fn iteration_cap(rows: usize, cols: usize) -> usize {
    10_000 + 64 * (rows + cols)
}

/// The revised-simplex working state over a `StandardForm<f64>`.
struct Rev<'a> {
    sf: &'a StandardForm<f64>,
    /// Per-thread slab pool the dense/eta scratch is checked out of (and
    /// given back to in [`Rev::finish`]).
    arena: &'a mut SolveArena,
    basis: Vec<usize>,
    /// Column → basis position (`usize::MAX` when nonbasic).
    pos: Vec<usize>,
    state: Vec<VarState>,
    /// Basic values, parallel to `basis`.
    xb: Vec<f64>,
    lu: SparseLu<f64>,
    /// Product-form updates since the last refactorization, sparse.
    etas: Vec<Eta>,
    /// Total entry count of the eta file (refactorization trigger).
    eta_nnz: usize,
    barred: Vec<bool>,
    /// Key column → its VUB dependents (static).
    deps: Vec<Vec<usize>>,
    /// Partial-pricing rotation cursor.
    cursor: usize,
    /// Scratch dense image of the entering column (sparsely re-zeroed).
    aq: Vec<f64>,
    /// Scratch basic-cost vector for the BTRAN of each iteration.
    cb: Vec<f64>,
    pivots: u64,
    bound_flips: u64,
    refactorizations: u64,
    /// Pivot budget (`0` = unlimited), from [`BoundedOptions`].
    pivot_budget: u64,
    /// Refactorization budget (`0` = unlimited).
    refactor_budget: u64,
    /// Wall-clock deadline for this solve (`None` = unbudgeted).
    deadline: Option<Instant>,
    /// Iterations since the solve started (wall-clock check cadence).
    ticks: u64,
}

/// One product-form update: the basis column at position `r` was replaced
/// by a column whose `B⁻¹` image is the sparse vector with `pivot` at row
/// `r` and `rest` elsewhere. The pivot entry is stored out-of-line so the
/// FTRAN/BTRAN hot loops run branch-free over `rest`.
struct Eta {
    r: usize,
    pivot: f64,
    rest: Vec<(usize, f64)>,
}

enum StepOutcome {
    Optimal,
    Unbounded,
    Stalled,
    Budget(BudgetKind),
}

/// What the ratio test decided the step runs into.
#[derive(Debug, Clone, Copy)]
enum Hit {
    /// The entering variable reaches a resting state with no structural
    /// change: its opposite constant bound, or its VUB against a nonbasic
    /// key (from either side).
    FlipTo(VarState),
    /// The entering variable glues to its *basic* key (augments the key
    /// column — refactorization).
    FlipGlue,
    /// The entering `AtVub` variable, glued to a *basic* key, comes off
    /// the glue all the way down to 0 (shrinks the key column).
    FlipUnglue,
    /// A basic variable leaves to the given resting state (`AtLower`,
    /// `AtUpper`, or `AtVub` against a nonbasic key) — an ordinary pivot.
    Leave(usize, VarState),
    /// A basic dependent hits its VUB against a basic key (or against the
    /// entering key): it leaves the basis glued, augmenting the key column
    /// — refactorization.
    LeaveGlue(usize),
}

impl<'a> Rev<'a> {
    fn new(sf: &'a StandardForm<f64>, arena: &'a mut SolveArena) -> Option<Rev<'a>> {
        // Factor the starting basis before touching the arena, so a
        // singular start never strands checked-out buffers.
        let lu = SparseLu::factor(
            sf.m,
            &sf.init_basis
                .iter()
                .map(|&j| sf.cols[j].clone())
                .collect::<Vec<_>>(),
        )?;
        let basis = sf.init_basis.clone();
        let mut state = vec![VarState::AtLower; sf.ncols];
        let mut pos = vec![usize::MAX; sf.ncols];
        for (i, &j) in basis.iter().enumerate() {
            state[j] = VarState::Basic;
            pos[j] = i;
        }
        let mut deps: Vec<Vec<usize>> = vec![Vec::new(); sf.ncols];
        for j in 0..sf.ncols {
            if let Some(k) = sf.vub[j] {
                deps[k].push(j);
            }
        }
        let aq = arena.take_f64(sf.m, 0.0);
        let cb = arena.take_f64(sf.m, 0.0);
        let mut rev = Rev {
            sf,
            arena,
            basis,
            pos,
            state,
            xb: Vec::new(),
            lu,
            etas: Vec::new(),
            eta_nnz: 0,
            barred: vec![false; sf.ncols],
            deps,
            cursor: 0,
            aq,
            cb,
            pivots: 0,
            bound_flips: 0,
            refactorizations: 0,
            pivot_budget: 0,
            refactor_budget: 0,
            deadline: None,
            ticks: 0,
        };
        rev.recompute_xb();
        Some(rev)
    }

    /// Arms the solve budgets from the caller's options. The wall-clock
    /// deadline starts *now*, covering everything that follows (both
    /// phases, warm installs).
    fn arm_budgets(&mut self, opts: &BoundedOptions) {
        self.pivot_budget = opts.pivot_budget;
        self.refactor_budget = opts.refactor_budget;
        self.deadline = opts.stage_deadline();
    }

    /// Which budget, if any, is exhausted. Called at the top of every
    /// pivot-loop iteration; the wall clock is only read every
    /// [`TIME_CHECK_EVERY`] iterations.
    fn budget_trip(&mut self) -> Option<BudgetKind> {
        if self.pivot_budget != 0 && self.pivots >= self.pivot_budget {
            return Some(BudgetKind::Pivots);
        }
        if self.refactor_budget != 0 && self.refactorizations >= self.refactor_budget {
            return Some(BudgetKind::Refactorizations);
        }
        if let Some(deadline) = self.deadline {
            self.ticks += 1;
            if self.ticks.is_multiple_of(TIME_CHECK_EVERY) && Instant::now() >= deadline {
                return Some(BudgetKind::Time);
            }
        }
        None
    }

    /// Consumes the solver state into its result. `Stalled` and `Budget`
    /// results carry no basis/state, matching the contract that neither is
    /// a verdict. The pooled scratch (dense vectors and eta columns) is
    /// given back to the arena by [`Rev`]'s `Drop` impl when `self` goes
    /// out of scope here — the same path that recycles it on an unwind.
    fn finish(mut self, status: BoundedStatus) -> BoundedBasis {
        let blank = matches!(status, BoundedStatus::Stalled | BoundedStatus::Budget(_));
        BoundedBasis {
            status,
            basis: if blank {
                Vec::new()
            } else {
                std::mem::take(&mut self.basis)
            },
            state: if blank {
                Vec::new()
            } else {
                std::mem::take(&mut self.state)
            },
            pivots: self.pivots,
            bound_flips: self.bound_flips,
            refactorizations: self.refactorizations,
        }
    }

    /// Attempts to install a [`BasisSnapshot`] taken from a structurally
    /// identical problem: validates the snapshot's states against this
    /// standard form, adopts its basis/state vectors, refactorizes the
    /// (key-column-augmented) basis **once** to validate it, and checks
    /// the recomputed basic values are primal feasible for *this*
    /// problem's data (within [`WARM_FEAS_TOL`]; exactness comes from the
    /// caller's rational certification, never from here). On success the
    /// solver is ready for a phase-2 run — artificials are barred and
    /// every basic artificial sits at (numerical) zero, so the installed
    /// basis is a feasible starting basis and phase 1 is skipped.
    ///
    /// Returns `false` on any failed check; the caller must then give the
    /// checked-out scratch back via [`Rev::finish`] before falling back to
    /// a cold solve — a failed install may leave `basis`/`state`
    /// half-adopted, which `finish(Stalled)` discards.
    fn install_snapshot(&mut self, snap: &BasisSnapshot) -> bool {
        let sf = self.sf;
        if snap.m != sf.m
            || snap.ncols != sf.ncols
            || snap.basis.len() != sf.m
            || snap.state.len() != sf.ncols
        {
            return false;
        }
        // State consistency against this form: finite bounds where states
        // claim them, VUBs where glue states claim them, flat families,
        // exactly m basic columns matching the basis vector.
        let mut basic_count = 0usize;
        for j in 0..sf.ncols {
            match snap.state[j] {
                VarState::Basic => basic_count += 1,
                VarState::AtUpper => {
                    if sf.upper[j].is_none() {
                        return false;
                    }
                }
                VarState::AtVub => {
                    let Some(k) = sf.vub[j] else { return false };
                    if snap.state[k] == VarState::AtVub {
                        return false;
                    }
                }
                VarState::AtLower => {}
            }
        }
        if basic_count != sf.m {
            return false;
        }
        let mut pos = vec![usize::MAX; sf.ncols];
        for (i, &j) in snap.basis.iter().enumerate() {
            if j >= sf.ncols || snap.state[j] != VarState::Basic || pos[j] != usize::MAX {
                return false;
            }
            pos[j] = i;
        }
        // Adopt the snapshot and validate with one refactorization.
        self.basis.copy_from_slice(&snap.basis);
        self.state.copy_from_slice(&snap.state);
        self.pos = pos;
        let Some(lu) = SparseLu::factor(sf.m, &self.basis_cols()) else {
            return false; // singular for this data
        };
        self.lu = lu;
        self.refactorizations += 1;
        self.recompute_xb();
        // Primal feasibility of the recomputed basic values: bounds,
        // VUB caps (against basic or resting keys), artificials at zero.
        for i in 0..sf.m {
            let vi = self.basis[i];
            let x = self.xb[i];
            if x < -WARM_FEAS_TOL {
                return false;
            }
            if sf.artificial[vi] && x.abs() > WARM_FEAS_TOL {
                return false;
            }
            if let Some(u) = sf.upper[vi] {
                if x > u + WARM_FEAS_TOL {
                    return false;
                }
            }
            if let Some(k) = sf.vub[vi] {
                let kv = if self.pos[k] == usize::MAX {
                    self.key_rest_value(k)
                } else {
                    self.xb[self.pos[k]]
                };
                if x > kv + WARM_FEAS_TOL {
                    return false;
                }
            }
        }
        // Phase 1 is skipped: bar every artificial from re-entering (the
        // phase-2 ratio test additionally freezes the basic ones at 0).
        for j in 0..sf.ncols {
            if sf.artificial[j] {
                self.barred[j] = true;
            }
        }
        true
    }

    /// The sparse eta column for `w` from the arena pool: keeps the pivot
    /// entry at `r` unconditionally and drops other near-zero entries.
    fn sparse_eta(&mut self, w: &[f64], r: usize) -> Vec<(usize, f64)> {
        let mut col = self.arena.take_pairs();
        for (i, &v) in w.iter().enumerate() {
            if i == r || v.abs() > 1e-12 {
                col.push((i, v));
            }
        }
        col
    }

    /// The resting value of a *nonbasic* key (`AtLower`/`AtUpper` only —
    /// keys are never `AtVub`, families are flat).
    fn key_rest_value(&self, k: usize) -> f64 {
        match self.state[k] {
            VarState::AtLower => 0.0,
            VarState::AtUpper => self.sf.upper[k].expect("AtUpper implies a finite bound"),
            VarState::Basic | VarState::AtVub => unreachable!("not a nonbasic key"),
        }
    }

    /// The augmented (Schrage key) column of `v`: its own column plus the
    /// columns of every dependent currently glued to it.
    fn aug_col(&self, v: usize) -> Vec<(usize, f64)> {
        let glued: Vec<usize> = self.deps[v]
            .iter()
            .copied()
            .filter(|&j| self.state[j] == VarState::AtVub)
            .collect();
        augmented_column(&self.sf.cols, v, &glued)
    }

    fn basis_cols(&self) -> Vec<Vec<(usize, f64)>> {
        self.basis.iter().map(|&j| self.aug_col(j)).collect()
    }

    /// `xb = B̄⁻¹·(b − Σ_{j at a fixed value} val_j·A_j)` from scratch.
    /// Fixed values: constant upper bounds and dependents glued to
    /// *nonbasic* keys (dependents glued to basic keys ride inside the
    /// augmented basis columns instead).
    fn recompute_xb(&mut self) {
        let mut rhs = self.arena.take_f64(self.sf.m, 0.0);
        rhs.copy_from_slice(&self.sf.b);
        for j in 0..self.sf.ncols {
            let val = match self.state[j] {
                VarState::AtUpper => self.sf.upper[j].expect("AtUpper implies a finite bound"),
                VarState::AtVub => {
                    let k = self.sf.vub[j].expect("AtVub implies a VUB");
                    if self.pos[k] == usize::MAX {
                        self.key_rest_value(k)
                    } else {
                        continue; // inside the augmented key column
                    }
                }
                VarState::Basic | VarState::AtLower => continue,
            };
            if val != 0.0 {
                for &(i, v) in &self.sf.cols[j] {
                    rhs[i] -= val * v;
                }
            }
        }
        let xb = self.ftran(&rhs);
        self.arena.give_f64(rhs);
        let old = std::mem::replace(&mut self.xb, xb);
        self.arena.give_f64(old);
    }

    /// FTRAN through the pooled LU solve and the eta file. The returned
    /// vector is an arena buffer — the iteration gives it back at the end
    /// of each pivot, so the per-pivot solves stay allocator-quiet.
    fn ftran(&mut self, v: &[f64]) -> Vec<f64> {
        faultinject::hit("panic_in_ftran");
        let mut x = self.lu.solve_pooled(v, self.arena);
        for e in &self.etas {
            let t = x[e.r] / e.pivot;
            if t != 0.0 {
                for &(i, wi) in &e.rest {
                    x[i] -= wi * t;
                }
            }
            x[e.r] = t;
        }
        x
    }

    /// BTRAN through the eta file and the pooled LU solve; like
    /// [`Rev::ftran`], both the internal copy and the returned vector are
    /// arena buffers.
    fn btran(&mut self, c: &[f64]) -> Vec<f64> {
        let mut cacc = self.arena.take_f64(c.len(), 0.0);
        cacc.copy_from_slice(c);
        for e in self.etas.iter().rev() {
            let mut acc = 0.0;
            for &(i, wi) in &e.rest {
                acc += cacc[i] * wi;
            }
            cacc[e.r] = (cacc[e.r] - acc) / e.pivot;
        }
        let z = self.lu.solve_transposed_pooled(&cacc, self.arena);
        self.arena.give_f64(cacc);
        z
    }

    fn refactor(&mut self) -> bool {
        match SparseLu::factor(self.sf.m, &self.basis_cols()) {
            Some(lu) => {
                self.lu = lu;
                for e in self.etas.drain(..) {
                    self.arena.give_pairs(e.rest);
                }
                self.eta_nnz = 0;
                self.refactorizations += 1;
                self.recompute_xb();
                true
            }
            None => false,
        }
    }

    /// Appends an eta to the product-form file, tracking its fill. `col`
    /// must contain its pivot entry (row `r`), which is split out for the
    /// branch-free application loops.
    fn push_eta(&mut self, r: usize, mut col: Vec<(usize, f64)>) {
        let at = col
            .iter()
            .position(|&(i, _)| i == r)
            .expect("eta stores its pivot entry");
        let pivot = col.swap_remove(at).1;
        debug_assert!(pivot != 0.0);
        self.eta_nnz += col.len() + 1;
        self.etas.push(Eta {
            r,
            pivot,
            rest: col,
        });
    }

    /// Whether the eta file is long or dense enough to refactorize.
    fn eta_file_full(&self) -> bool {
        self.etas.len() >= REFACTOR_EVERY || self.eta_nnz >= ETA_NNZ_PER_ROW * self.sf.m
    }

    /// Recycles the iteration's dense temporaries on an early return from
    /// the pivot loop, so terminal iterations (optimality, unboundedness,
    /// refactorization failure) pool their scratch exactly like ordinary
    /// ones — without this, every `optimize` call would drop one or two
    /// buffers and the steady state of a solve-per-call workload would
    /// allocate fresh ones each time.
    fn recycle(&mut self, w: Vec<f64>, y: Vec<f64>, out: StepOutcome) -> StepOutcome {
        self.arena.give_f64(w);
        self.arena.give_f64(y);
        out
    }

    /// Plain reduced cost `d_j = c_j − y·A_j`.
    fn reduced(&self, cost: &[f64], y: &[f64], j: usize) -> f64 {
        let mut d = cost[j];
        for &(i, v) in &self.sf.cols[j] {
            d -= y[i] * v;
        }
        d
    }

    /// The "effective" improving reduced cost of nonbasic `j` (negative =
    /// improving), per resting state:
    ///
    /// * `AtLower` rises: `d̄_j` (augmented over glued dependents if `j` is
    ///   a key — they move with it);
    /// * `AtUpper` descends: `−d̄_j`;
    /// * `AtVub` comes off the glue downwards: `−d_j` (plain — the key
    ///   stays put).
    fn effective(&self, cost: &[f64], y: &[f64], j: usize) -> f64 {
        let d = self.reduced(cost, y, j);
        match self.state[j] {
            VarState::AtVub => -d,
            VarState::AtLower | VarState::AtUpper => {
                let mut dbar = d;
                for &dep in &self.deps[j] {
                    if self.state[dep] == VarState::AtVub {
                        dbar += self.reduced(cost, y, dep);
                    }
                }
                if self.state[j] == VarState::AtLower {
                    dbar
                } else {
                    -dbar
                }
            }
            VarState::Basic => unreachable!(),
        }
    }

    /// Entering-column selection: Bland (full scan, lowest index), full
    /// Dantzig (`window == 0`), or rotating-window partial pricing: price
    /// `window` columns starting at the cursor; the first window holding
    /// an improving candidate yields its best (Dantzig within the
    /// window), and only a full fruitless cycle certifies optimality. The
    /// rotation doubles as diversification — always chasing the single
    /// most negative reduced cost concentrates the pivots in one VUB
    /// family and multiplies degenerate glue/unglue churn.
    fn price(&mut self, cost: &[f64], y: &[f64], bland: bool, window: usize) -> Option<usize> {
        let ncols = self.sf.ncols;
        let priceable = |rev: &Self, j: usize| -> Option<f64> {
            if rev.state[j] == VarState::Basic || rev.barred[j] {
                return None;
            }
            let eff = rev.effective(cost, y, j);
            (eff < -ENTER_TOL).then_some(eff)
        };
        if bland {
            return (0..ncols).find(|&j| priceable(self, j).is_some());
        }
        if window == 0 || window >= ncols {
            let mut best: Option<(usize, f64)> = None;
            for j in 0..ncols {
                if let Some(eff) = priceable(self, j) {
                    if best.map(|(_, b)| eff < b) != Some(false) {
                        best = Some((j, eff));
                    }
                }
            }
            return best.map(|(j, _)| j);
        }
        let mut scanned = 0;
        while scanned < ncols {
            let mut best: Option<(usize, f64)> = None;
            let block = window.min(ncols - scanned);
            for _ in 0..block {
                let j = self.cursor;
                self.cursor = (self.cursor + 1) % ncols;
                if let Some(eff) = priceable(self, j) {
                    if best.map(|(_, b)| eff < b) != Some(false) {
                        best = Some((j, eff));
                    }
                }
            }
            scanned += block;
            if let Some((j, _)) = best {
                return Some(j);
            }
        }
        None
    }

    /// Runs the simplex loop for the cost vector `cost`. With
    /// `freeze_artificials` (phase 2), basic artificials are treated as
    /// having upper bound 0 in the ratio test, so no pivot can ever move
    /// them off zero — without it a cost-0 artificial could silently
    /// re-absorb constraint violation.
    fn optimize(&mut self, cost: &[f64], freeze_artificials: bool, window: usize) -> StepOutcome {
        let m = self.sf.m;
        let mut bland = false;
        let mut degenerate_run = 0usize;
        let cap = iteration_cap(m, self.sf.ncols);
        // Per-key sum of glued dependents' costs, maintained incrementally
        // at each glue/unglue event below. Rebuilding it by scanning every
        // key's dependent list each iteration would cost O(total VUB
        // memberships) per iteration — the O(n²)-class term this solver
        // exists to avoid.
        let mut aug_cost = vec![0.0f64; self.sf.ncols];
        for j in 0..self.sf.ncols {
            if self.state[j] == VarState::AtVub {
                aug_cost[self.sf.vub[j].expect("AtVub implies a VUB")] += cost[j];
            }
        }
        for _ in 0..cap {
            // Solve budgets first: at the top of an iteration no dense
            // temporaries are in flight, so a budget stop (like the
            // injected panic below) recycles its scratch through the
            // ordinary `finish`/`Drop` path.
            if let Some(kind) = self.budget_trip() {
                return StepOutcome::Budget(kind);
            }
            faultinject::hit("panic_in_pivot");
            // Simplex multipliers for the current (augmented) basis; the
            // basic-cost stub is pooled scratch refilled in place. (The
            // field is swapped out around the call because btran borrows
            // the solver state mutably for its arena.)
            for (slot, &v) in self.cb.iter_mut().zip(self.basis.iter()) {
                *slot = cost[v] + aug_cost[v];
            }
            let cb = std::mem::take(&mut self.cb);
            let y = self.btran(&cb);
            self.cb = cb;
            let Some(q) = self.price(cost, &y, bland, window) else {
                self.arena.give_f64(y);
                return StepOutcome::Optimal;
            };
            // Direction: +1 when rising from the lower bound, −1 when
            // descending from the upper bound or coming off the VUB glue.
            let sigma = if self.state[q] == VarState::AtLower {
                1.0
            } else {
                -1.0
            };
            // Entering column: augmented when q is a key whose glued
            // dependents ride along; the dependents of a *basic* key stay
            // inside the basis matrix, so an entering AtVub dependent uses
            // its plain column (the t-parametrization of the glue slack).
            let acol = self.aug_col(q);
            for &(i, v) in &acol {
                self.aq[i] = v;
            }
            let aq = std::mem::take(&mut self.aq);
            let w = self.ftran(&aq);
            self.aq = aq;
            for &(i, _) in &acol {
                self.aq[i] = 0.0;
            }

            // ---- ratio test -------------------------------------------
            // Entering variable's own span first (the bound-flip family).
            let mut t_best = f64::INFINITY;
            let mut hit = Hit::FlipTo(VarState::AtLower); // overwritten below
            let mut hit_mag = 0.0f64; // pivot magnitude for tie-breaks
            let consider =
                |t: f64, mag: f64, h: Hit, t_best: &mut f64, hit: &mut Hit, hit_mag: &mut f64| {
                    let t = t.max(0.0);
                    let tie = (t - *t_best).abs() <= 1e-12;
                    if t < *t_best - 1e-12 || (tie && mag > *hit_mag) {
                        *t_best = t;
                        *hit = h;
                        *hit_mag = mag;
                    }
                };
            match self.state[q] {
                VarState::AtLower => {
                    if let Some(u) = self.sf.upper[q] {
                        consider(
                            u,
                            0.0,
                            Hit::FlipTo(VarState::AtUpper),
                            &mut t_best,
                            &mut hit,
                            &mut hit_mag,
                        );
                    }
                    if let Some(k) = self.sf.vub[q] {
                        if self.pos[k] == usize::MAX {
                            let span = self.key_rest_value(k);
                            consider(
                                span,
                                0.0,
                                Hit::FlipTo(VarState::AtVub),
                                &mut t_best,
                                &mut hit,
                                &mut hit_mag,
                            );
                        } else {
                            // Rising towards a basic key: meet when
                            // t = xb_k / (1 + σ·w_k).
                            let pk = self.pos[k];
                            let den = 1.0 + sigma * w[pk];
                            if den > PIV_TOL {
                                consider(
                                    self.xb[pk].max(0.0) / den,
                                    den.abs(),
                                    Hit::FlipGlue,
                                    &mut t_best,
                                    &mut hit,
                                    &mut hit_mag,
                                );
                            }
                        }
                    }
                }
                VarState::AtUpper => {
                    // Dependents never rest AtUpper (their constant bounds
                    // are promoted rows), so the only span is down to 0.
                    let u = self.sf.upper[q].expect("AtUpper implies a finite bound");
                    consider(
                        u,
                        0.0,
                        Hit::FlipTo(VarState::AtLower),
                        &mut t_best,
                        &mut hit,
                        &mut hit_mag,
                    );
                }
                VarState::AtVub => {
                    let k = self.sf.vub[q].expect("AtVub implies a VUB");
                    if self.pos[k] == usize::MAX {
                        let span = self.key_rest_value(k);
                        consider(
                            span,
                            0.0,
                            Hit::FlipTo(VarState::AtLower),
                            &mut t_best,
                            &mut hit,
                            &mut hit_mag,
                        );
                    } else {
                        // Descending off a basic key towards 0: the key's
                        // value drifts too, meet at t = xb_k / (1 + σ·w_k).
                        let pk = self.pos[k];
                        let den = 1.0 + sigma * w[pk];
                        if den > PIV_TOL {
                            consider(
                                self.xb[pk].max(0.0) / den,
                                den.abs(),
                                Hit::FlipUnglue,
                                &mut t_best,
                                &mut hit,
                                &mut hit_mag,
                            );
                        }
                    }
                }
                VarState::Basic => unreachable!(),
            }
            // Basic variables hitting a bound.
            for i in 0..m {
                let vi = self.basis[i];
                let d = sigma * w[i];
                if d > PIV_TOL {
                    consider(
                        self.xb[i].max(0.0) / d,
                        d.abs(),
                        Hit::Leave(i, VarState::AtLower),
                        &mut t_best,
                        &mut hit,
                        &mut hit_mag,
                    );
                } else if d < -PIV_TOL {
                    // Ceilings: frozen artificials, constant bounds, and
                    // VUBs against nonbasic keys.
                    let mut ub = if freeze_artificials && self.sf.artificial[vi] {
                        Some((0.0, VarState::AtLower))
                    } else {
                        self.sf.upper[vi].map(|u| (u, VarState::AtUpper))
                    };
                    // A nonbasic key is a fixed ceiling — unless it is the
                    // entering variable itself (about to move/turn basic),
                    // which the pairwise branch below handles as a glue.
                    if let Some(k) = self.sf.vub[vi] {
                        if self.pos[k] == usize::MAX && k != q {
                            let vk = self.key_rest_value(k);
                            if ub.map(|(u, _)| vk < u) != Some(false) {
                                ub = Some((vk, VarState::AtVub));
                            }
                        }
                    }
                    if let Some((u, to)) = ub {
                        consider(
                            (u - self.xb[i]).max(0.0) / -d,
                            d.abs(),
                            Hit::Leave(i, to),
                            &mut t_best,
                            &mut hit,
                            &mut hit_mag,
                        );
                    }
                }
                // Pairwise VUB limits: a basic dependent closing on its
                // basic key, or on the entering variable when that is its
                // key.
                if let Some(k) = self.sf.vub[vi] {
                    if self.pos[k] != usize::MAX {
                        let pk = self.pos[k];
                        let rate = sigma * (w[pk] - w[i]);
                        if rate > PIV_TOL {
                            let s = (self.xb[pk] - self.xb[i]).max(0.0);
                            consider(
                                s / rate,
                                rate.abs(),
                                Hit::LeaveGlue(i),
                                &mut t_best,
                                &mut hit,
                                &mut hit_mag,
                            );
                        }
                    } else if k == q {
                        // Entering key vs its basic dependent: the slack
                        // (val_q + σt) − (xb_i − σ t w_i) shrinks when
                        // σ(1 + w_i) < 0.
                        let start = match self.state[q] {
                            VarState::AtLower => 0.0,
                            VarState::AtUpper => {
                                self.sf.upper[q].expect("AtUpper implies a finite bound")
                            }
                            _ => unreachable!("keys are never AtVub"),
                        };
                        let rate = -sigma * (1.0 + w[i]);
                        if rate > PIV_TOL {
                            let s = (start - self.xb[i]).max(0.0);
                            consider(
                                s / rate,
                                rate.abs(),
                                Hit::LeaveGlue(i),
                                &mut t_best,
                                &mut hit,
                                &mut hit_mag,
                            );
                        }
                    }
                }
            }
            if t_best.is_infinite() {
                return self.recycle(w, y, StepOutcome::Unbounded);
            }
            if t_best <= ENTER_TOL {
                degenerate_run += 1;
                if degenerate_run >= DEGENERATE_SWITCH {
                    bland = true;
                }
            } else {
                degenerate_run = 0;
            }
            let t = t_best;
            // ---- apply -------------------------------------------------
            // Glue/unglue events change basis *columns* (augmented key
            // columns grow or shrink), not just which columns are basic.
            // Each such change is the rank-one update `B ← B ± A_col·e_p^T`,
            // which the product-form eta file absorbs as the eta
            // `(p, ±B⁻¹A_col + e_p)`; the ratio test's rate/den thresholds
            // guarantee the eta pivot entries are well-conditioned, so a
            // full refactorization is only the fallback, never the rule.
            //
            // When q was glued to a basic key, its departure shrinks that
            // key column whatever else happens; capture the key's position
            // now — the bookkeeping below may move or evict the key.
            let unglue_pk: Option<usize> = (self.state[q] == VarState::AtVub)
                .then(|| self.pos[self.sf.vub[q].expect("AtVub implies a VUB")])
                .filter(|&pk| pk != usize::MAX);
            let unglues_entering = unglue_pk.is_some();
            let entering_was_glued = self.state[q] == VarState::AtVub;
            // The value the entering variable takes if it pivots into the
            // basis at step t, against the pre-update basic values: the
            // t-parametrization off a basic key (v_q(t) = xb_pk +
            // t·(w_pk − 1)), an ascent from 0, or a descent from the
            // constant bound / nonbasic key's value. Shared by the leave
            // arms below.
            let enter_value = if let Some(pk) = unglue_pk {
                self.xb[pk] + t * (w[pk] - 1.0)
            } else if sigma > 0.0 {
                t
            } else {
                let start = match self.sf.upper[q] {
                    Some(u) => u,
                    None => {
                        let k = self.sf.vub[q].expect("descent needs a bound");
                        self.key_rest_value(k)
                    }
                };
                start - t
            };
            match hit {
                Hit::FlipTo(new_state) => {
                    // Entering flips between fixed resting values; only
                    // possible with a nonbasic (or absent) key, so no
                    // column changes. (`unglues_entering` implies the span
                    // candidate was FlipUnglue, never FlipTo.)
                    debug_assert!(!unglues_entering);
                    if t > 0.0 {
                        for i in 0..m {
                            self.xb[i] -= sigma * t * w[i];
                        }
                    }
                    if entering_was_glued {
                        aug_cost[self.sf.vub[q].expect("AtVub implies a VUB")] -= cost[q];
                    }
                    if new_state == VarState::AtVub {
                        aug_cost[self.sf.vub[q].expect("AtVub target implies a VUB")] += cost[q];
                    }
                    self.state[q] = new_state;
                    self.bound_flips += 1;
                }
                Hit::FlipGlue => {
                    // q (a dependent, plain column — deps are never keys)
                    // rises onto its basic key at position pk:
                    // B ← B + A_q·e_pk^T, eta (pk, w + e_pk) with pivot
                    // 1 + w_pk > PIV_TOL by the den check above.
                    let key = self.sf.vub[q].expect("FlipGlue implies a VUB");
                    let pk = self.pos[key];
                    if t > 0.0 {
                        for i in 0..m {
                            self.xb[i] -= sigma * t * w[i];
                        }
                    }
                    self.state[q] = VarState::AtVub;
                    aug_cost[key] += cost[q];
                    self.bound_flips += 1;
                    let mut col = self.sparse_eta(&w, pk);
                    bump(&mut col, pk, 1.0);
                    self.push_eta(pk, col);
                    if self.eta_file_full() && !self.refactor() {
                        return self.recycle(w, y, StepOutcome::Stalled);
                    }
                }
                Hit::FlipUnglue => {
                    // q comes off its basic key down to 0:
                    // B ← B − A_q·e_pk^T, eta (pk, −w + e_pk) with pivot
                    // 1 − w_pk > PIV_TOL by the den check above.
                    let key = self.sf.vub[q].expect("FlipUnglue implies a VUB");
                    let pk = self.pos[key];
                    if t > 0.0 {
                        for i in 0..m {
                            self.xb[i] -= sigma * t * w[i];
                        }
                    }
                    self.state[q] = VarState::AtLower;
                    aug_cost[key] -= cost[q];
                    self.bound_flips += 1;
                    let mut neg = self.arena.take_f64(m, 0.0);
                    for (o, &v) in neg.iter_mut().zip(&w) {
                        *o = -v;
                    }
                    let mut col = self.sparse_eta(&neg, pk);
                    self.arena.give_f64(neg);
                    bump(&mut col, pk, 1.0);
                    self.push_eta(pk, col);
                    if self.eta_file_full() && !self.refactor() {
                        return self.recycle(w, y, StepOutcome::Stalled);
                    }
                }
                Hit::Leave(r, to) => {
                    let lvar = self.basis[r];
                    if entering_was_glued {
                        aug_cost[self.sf.vub[q].expect("AtVub implies a VUB")] -= cost[q];
                    }
                    if to == VarState::AtVub {
                        aug_cost[self.sf.vub[lvar].expect("AtVub target implies a VUB")] +=
                            cost[lvar];
                    }
                    self.state[lvar] = to;
                    self.pos[lvar] = usize::MAX;
                    self.basis[r] = q;
                    self.pos[q] = r;
                    self.state[q] = VarState::Basic;
                    self.pivots += 1;
                    if t > 0.0 {
                        for i in 0..m {
                            if i != r {
                                self.xb[i] -= sigma * t * w[i];
                            }
                        }
                    }
                    self.xb[r] = enter_value;
                    if let Some(pk) = unglue_pk {
                        // Shrink the key column first (eta1), then install
                        // the entering column at r against the shrunk
                        // basis (eta2, direction w transformed by eta1).
                        let den = 1.0 - w[pk];
                        if den.abs() <= PIV_TOL {
                            if !self.refactor() {
                                return self.recycle(w, y, StepOutcome::Stalled);
                            }
                        } else {
                            let mut neg = self.arena.take_f64(m, 0.0);
                            for (o, &v) in neg.iter_mut().zip(&w) {
                                *o = -v;
                            }
                            let mut col = self.sparse_eta(&neg, pk);
                            bump(&mut col, pk, 1.0);
                            self.push_eta(pk, col);
                            let scale = w[pk] / den;
                            let mut w2 = neg; // reuse the pooled buffer
                            for (o, &v) in w2.iter_mut().zip(&w) {
                                *o = v * (1.0 + scale);
                            }
                            w2[pk] = scale;
                            if w2[r].abs() <= PIV_TOL {
                                self.arena.give_f64(w2);
                                if !self.refactor() {
                                    return self.recycle(w, y, StepOutcome::Stalled);
                                }
                            } else {
                                let col = self.sparse_eta(&w2, r);
                                self.arena.give_f64(w2);
                                self.push_eta(r, col);
                            }
                        }
                    } else {
                        let col = self.sparse_eta(&w, r);
                        self.push_eta(r, col);
                    }
                    if self.eta_file_full() && !self.refactor() {
                        return self.recycle(w, y, StepOutcome::Stalled);
                    }
                }
                Hit::LeaveGlue(r) => {
                    // The basic dependent at row r leaves glued to its key
                    // — already basic at pk, or the entering q itself. Its
                    // column A_dep is the current basis column r, so
                    // B⁻¹A_dep = e_r exactly and the glue etas are
                    // analytic.
                    let lvar = self.basis[r];
                    let key = self.sf.vub[lvar].expect("LeaveGlue implies a VUB");
                    let pk = self.pos[key];
                    if entering_was_glued {
                        aug_cost[self.sf.vub[q].expect("AtVub implies a VUB")] -= cost[q];
                    }
                    aug_cost[key] += cost[lvar];
                    self.state[lvar] = VarState::AtVub;
                    self.pos[lvar] = usize::MAX;
                    self.basis[r] = q;
                    self.pos[q] = r;
                    self.state[q] = VarState::Basic;
                    self.pivots += 1;
                    if t > 0.0 {
                        for i in 0..m {
                            if i != r {
                                self.xb[i] -= sigma * t * w[i];
                            }
                        }
                    }
                    self.xb[r] = enter_value;
                    if unglues_entering {
                        // Three column changes at once (q's old key
                        // shrinks, the new glue, the install): rare —
                        // refactorize.
                        if !self.refactor() {
                            return self.recycle(w, y, StepOutcome::Stalled);
                        }
                    } else if pk != usize::MAX {
                        // Key basic at pk: eta1 = (pk, e_r + e_pk) grows
                        // the key column (pivot exactly 1); eta2 installs
                        // the entering column, whose eta1-transformed
                        // direction differs from w only at r and pk, with
                        // pivot w_r − w_pk (|·| = the ratio-test rate).
                        let mut glue = self.arena.take_pairs();
                        glue.extend([(r, 1.0), (pk, 1.0)]);
                        self.push_eta(pk, glue);
                        let mut w2 = self.arena.take_f64(m, 0.0);
                        w2.copy_from_slice(&w);
                        w2[r] -= w[pk];
                        let col = self.sparse_eta(&w2, r);
                        self.arena.give_f64(w2);
                        self.push_eta(r, col);
                    } else {
                        // The key is the entering q: install the augmented
                        // column + the fresh glue in one eta with pivot
                        // 1 + w_r (|·| = the ratio-test rate).
                        debug_assert_eq!(key, q);
                        let mut col = self.sparse_eta(&w, r);
                        bump(&mut col, r, 1.0);
                        self.push_eta(r, col);
                    }
                    if self.eta_file_full() && !self.refactor() {
                        return self.recycle(w, y, StepOutcome::Stalled);
                    }
                }
            }
            // Recycle the iteration's dense temporaries (terminal paths
            // above recycle through [`Rev::recycle`]).
            self.arena.give_f64(w);
            self.arena.give_f64(y);
        }
        StepOutcome::Stalled
    }
}

/// Gives every pooled scratch buffer the solver still owns (dense vectors
/// and eta columns) back to the arena. This is the single recycling point
/// for **every** exit path: [`Rev::finish`] relies on it for ordinary
/// returns, and an unwind out of the pivot loop (an injected failpoint, a
/// defensive `panic!`) runs it too — so a panicking component solve never
/// leaks the arena's capacity or poisons its pool. Buffers already taken
/// out by `finish` are capacity-0 `Vec`s by then, which
/// [`SolveArena::give_f64`] ignores. (Dense temporaries held in locals
/// mid-iteration — an FTRAN image in flight when a panic fires — are
/// simply freed by their own drops; the pool loses nothing, it just
/// re-allocates that buffer on the next checkout.)
impl Drop for Rev<'_> {
    fn drop(&mut self) {
        self.arena.give_f64(std::mem::take(&mut self.aq));
        self.arena.give_f64(std::mem::take(&mut self.cb));
        self.arena.give_f64(std::mem::take(&mut self.xb));
        for e in self.etas.drain(..) {
            self.arena.give_pairs(e.rest);
        }
    }
}

/// The augmented (Schrage key) column `A_base + Σ_{j ∈ glued} A_j` as a
/// sorted sparse merge. Shared by the `f64` iteration and the exact `Rat`
/// certification so the two sides always build the same basis matrix.
pub(crate) fn augmented_column<S: Scalar>(
    cols: &[Vec<(usize, S)>],
    base: usize,
    glued: &[usize],
) -> Vec<(usize, S)> {
    if glued.is_empty() {
        return cols[base].clone();
    }
    let mut merged = cols[base].clone();
    for &j in glued {
        merged.extend_from_slice(&cols[j]);
    }
    merged.sort_unstable_by_key(|e| e.0);
    let mut out: Vec<(usize, S)> = Vec::with_capacity(merged.len());
    for (i, val) in merged {
        match out.last_mut() {
            Some(last) if last.0 == i => last.1 = last.1.add(&val),
            _ => out.push((i, val)),
        }
    }
    out
}

/// Adds `delta` to the entry at row `r` of a sparse eta column (present or
/// not).
fn bump(col: &mut Vec<(usize, f64)>, r: usize, delta: f64) {
    match col.iter_mut().find(|(i, _)| *i == r) {
        Some(e) => e.1 += delta,
        None => col.push((r, delta)),
    }
}

/// Two-phase bounded revised simplex over a `StandardForm<f64>` with the
/// default options. The result is a *proposal*: callers must verify
/// `Optimal` outcomes exactly and must treat every other status as "rerun
/// exactly".
pub fn solve_bounded_f64(sf: &StandardForm<f64>) -> BoundedBasis {
    solve_bounded_f64_with(sf, &BoundedOptions::default())
}

/// [`solve_bounded_f64`] with explicit [`BoundedOptions`]. Scratch space
/// comes from (and returns to) the calling thread's
/// [`SolveArena`].
pub fn solve_bounded_f64_with(sf: &StandardForm<f64>, opts: &BoundedOptions) -> BoundedBasis {
    let mut span = abt_core::obs_span!("solve.pivot", cols = sf.ncols, rows = sf.m);
    let basis = crate::arena::with_arena(|arena| solve_bounded_pooled(sf, opts, arena));
    span.field("pivots", basis.pivots);
    span.field("status", format_args!("{:?}", basis.status));
    basis
}

/// Warm-started bounded solve: installs `snap` (validating the states
/// against this standard form, refactorizing the augmented basis once,
/// and checking primal feasibility of the recomputed basic values) and,
/// on success, runs **phase 2 only** from the installed basis — the
/// installed basis is feasible with artificials at zero, so phase 1 is
/// skipped. Returns `None` when the snapshot cannot be
/// installed for this problem (shape drift, singular basis, primal
/// infeasibility) — the caller must fall back to the cold two-phase solve.
/// Like [`solve_bounded_f64_with`], an `Optimal` result is a *proposal*
/// that must be verified exactly.
pub fn solve_bounded_f64_warm_with(
    sf: &StandardForm<f64>,
    opts: &BoundedOptions,
    snap: &BasisSnapshot,
) -> Option<BoundedBasis> {
    crate::arena::with_arena(|arena| solve_bounded_warm_pooled(sf, opts, snap, arena))
}

/// [`solve_bounded_f64_warm_with`] against an explicit arena.
pub(crate) fn solve_bounded_warm_pooled(
    sf: &StandardForm<f64>,
    opts: &BoundedOptions,
    snap: &BasisSnapshot,
    arena: &mut SolveArena,
) -> Option<BoundedBasis> {
    let mut rev = Rev::new(sf, arena)?;
    rev.arm_budgets(opts);
    if !rev.install_snapshot(snap) {
        // The early-exit path of a failed install: `finish` gives every
        // checked-out buffer (dense scratch and any eta columns) back to
        // the arena before the caller falls back to the cold solve.
        rev.finish(BoundedStatus::Stalled);
        return None;
    }
    let status = match rev.optimize(&sf.cost, true, opts.pricing_window) {
        StepOutcome::Optimal => BoundedStatus::Optimal,
        StepOutcome::Unbounded => BoundedStatus::Unbounded,
        StepOutcome::Stalled => BoundedStatus::Stalled,
        StepOutcome::Budget(k) => BoundedStatus::Budget(k),
    };
    Some(rev.finish(status))
}

fn solve_bounded_pooled(
    sf: &StandardForm<f64>,
    opts: &BoundedOptions,
    arena: &mut SolveArena,
) -> BoundedBasis {
    let Some(mut rev) = Rev::new(sf, arena) else {
        return BoundedBasis {
            status: BoundedStatus::Stalled,
            basis: Vec::new(),
            state: Vec::new(),
            pivots: 0,
            bound_flips: 0,
            refactorizations: 0,
        };
    };
    rev.arm_budgets(opts);
    let window = opts.pricing_window;
    if sf.n_art > 0 {
        let cost1: Vec<f64> = (0..sf.ncols)
            .map(|j| if sf.artificial[j] { 1.0 } else { 0.0 })
            .collect();
        match rev.optimize(&cost1, false, window) {
            StepOutcome::Optimal => {}
            StepOutcome::Budget(k) => return rev.finish(BoundedStatus::Budget(k)),
            // Phase 1 is bounded below by 0; treat anything else as a stall.
            StepOutcome::Unbounded | StepOutcome::Stalled => {
                return rev.finish(BoundedStatus::Stalled)
            }
        }
        let infeasibility: f64 = rev
            .basis
            .iter()
            .zip(&rev.xb)
            .filter(|(&j, _)| sf.artificial[j])
            .map(|(_, &v)| v.max(0.0))
            .sum();
        if infeasibility > 1e-7 {
            return rev.finish(BoundedStatus::Infeasible);
        }
        for j in 0..sf.ncols {
            if sf.artificial[j] {
                rev.barred[j] = true;
            }
        }
    }
    let status = match rev.optimize(&sf.cost, true, window) {
        StepOutcome::Optimal => BoundedStatus::Optimal,
        StepOutcome::Unbounded => BoundedStatus::Unbounded,
        StepOutcome::Stalled => return rev.finish(BoundedStatus::Stalled),
        StepOutcome::Budget(k) => return rev.finish(BoundedStatus::Budget(k)),
    };
    rev.finish(status)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, LpProblem};

    fn sf(lp: &LpProblem<f64>) -> StandardForm<f64> {
        StandardForm::build(lp)
    }

    #[test]
    fn standard_form_shapes() {
        let mut lp: LpProblem<f64> = LpProblem::new();
        let x = lp.add_var(1.0);
        let y = lp.add_var(-1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0);
        lp.add_constraint(vec![(y, 1.0)], Cmp::Eq, 2.0);
        lp.set_upper(y, 3.0);
        let s = sf(&lp);
        assert_eq!(s.m, 3);
        assert_eq!(s.nstruct, 2);
        // slack(row0) + surplus(row1) + artificials(rows 1, 2)
        assert_eq!(s.ncols, 2 + 2 + 2);
        assert_eq!(s.n_art, 2);
        assert_eq!(s.upper[y], Some(3.0));
        assert!(s.artificial[4] && s.artificial[5]);
        assert_eq!(s.init_basis[0], 2); // slack
        assert_eq!(s.init_basis[1], 4); // artificial
        assert_eq!(s.init_basis[2], 5); // artificial
    }

    #[test]
    fn standard_form_promotes_dependent_constant_bounds() {
        // x has both a VUB (key y) and a constant bound: the constant bound
        // becomes a trailing row, the VUB stays metadata.
        let mut lp: LpProblem<f64> = LpProblem::new();
        let x = lp.add_var(1.0);
        let y = lp.add_var(1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 2.0);
        lp.set_upper(x, 3.0);
        lp.set_upper(y, 5.0);
        lp.set_vub(x, y);
        let s = sf(&lp);
        assert_eq!(s.m, 2); // original row + promoted bound row
        assert_eq!(s.b[1], 3.0);
        assert_eq!(s.upper[x], None);
        assert_eq!(s.upper[y], Some(5.0));
        assert_eq!(s.vub[x], Some(y));
        assert_eq!(s.vub[y], None);
        assert_eq!(s.cols[x], vec![(0, 1.0), (1, 1.0)]);
    }

    #[test]
    fn negative_rhs_flips() {
        let mut lp: LpProblem<f64> = LpProblem::new();
        let x = lp.add_var(1.0);
        lp.add_constraint(vec![(x, -1.0)], Cmp::Le, -3.0); // x ≥ 3
        let s = sf(&lp);
        assert!(s.row_flip[0]);
        assert_eq!(s.b[0], 3.0);
        assert_eq!(s.cols[x], vec![(0, 1.0)]);
        assert_eq!(s.n_art, 1);
    }

    #[test]
    fn repeated_terms_are_summed() {
        let mut lp: LpProblem<f64> = LpProblem::new();
        let x = lp.add_var(1.0);
        lp.add_constraint(vec![(x, 1.0), (x, 2.0)], Cmp::Le, 6.0);
        let s = sf(&lp);
        assert_eq!(s.cols[x], vec![(0, 3.0)]);
    }

    #[test]
    fn bounded_solver_uses_bound_flips() {
        // min −x  s.t.  x + y ≤ 10, x ≤ 5 implicit: optimum x = 5 reached
        // by a single bound flip (the slack never leaves the basis).
        let mut lp: LpProblem<f64> = LpProblem::new();
        let x = lp.add_var(-1.0);
        let y = lp.add_var(0.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 10.0);
        lp.set_upper(x, 5.0);
        let s = sf(&lp);
        let out = solve_bounded_f64(&s);
        assert_eq!(out.status, BoundedStatus::Optimal);
        assert_eq!(out.state[x], VarState::AtUpper);
        // The slack stayed basic: no pivot happened at all.
        assert_eq!(out.basis, s.init_basis);
        assert_eq!(out.pivots, 0);
        assert!(out.bound_flips >= 1);
    }

    #[test]
    fn bounded_solver_detects_infeasible_and_unbounded() {
        let mut inf: LpProblem<f64> = LpProblem::new();
        let x = inf.add_var(1.0);
        inf.add_constraint(vec![(x, 1.0)], Cmp::Ge, 3.0);
        inf.set_upper(x, 1.0);
        assert_eq!(
            solve_bounded_f64(&sf(&inf)).status,
            BoundedStatus::Infeasible
        );

        let mut unb: LpProblem<f64> = LpProblem::new();
        let x = unb.add_var(-1.0);
        unb.add_constraint(vec![(x, 1.0)], Cmp::Ge, 1.0);
        assert_eq!(
            solve_bounded_f64(&sf(&unb)).status,
            BoundedStatus::Unbounded
        );
    }

    #[test]
    fn vub_glue_flip_reaches_the_key() {
        // min −x  s.t.  x + y ≥ 1 with x ≤ y (VUB) and y ≤ 4: the optimum
        // pins x to its key at the key's bound (x = y = 4).
        let mut lp: LpProblem<f64> = LpProblem::new();
        let x = lp.add_var(-1.0);
        let y = lp.add_var(0.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        lp.set_upper(y, 4.0);
        lp.set_vub(x, y);
        let s = sf(&lp);
        let out = solve_bounded_f64(&s);
        assert_eq!(out.status, BoundedStatus::Optimal);
        // x rests on its VUB (glued) or basic at the same value; either way
        // the proposal must be consistent enough for exact verification —
        // here we just sanity-check the states are legal.
        assert!(matches!(out.state[x], VarState::AtVub | VarState::Basic));
    }

    #[test]
    fn vub_partial_pricing_matches_full_pricing() {
        // A few VUB families; full Dantzig and a tiny window must agree on
        // the terminal status (objectives are certified exactly upstream).
        let mut lp: LpProblem<f64> = LpProblem::new();
        let y0 = lp.add_var(1.0);
        let y1 = lp.add_var(1.0);
        let mut xs = Vec::new();
        for i in 0..6 {
            let x = lp.add_var(0.0);
            lp.set_vub(x, if i % 2 == 0 { y0 } else { y1 });
            xs.push(x);
        }
        lp.set_upper(y0, 3.0);
        lp.set_upper(y1, 2.0);
        // capacity-style rows and a demand row.
        lp.add_constraint(xs.iter().map(|&x| (x, 1.0)).collect(), Cmp::Ge, 4.0);
        let s = sf(&lp);
        let full = solve_bounded_f64_with(
            &s,
            &BoundedOptions {
                pricing_window: 0,
                ..BoundedOptions::default()
            },
        );
        let part = solve_bounded_f64_with(
            &s,
            &BoundedOptions {
                pricing_window: 2,
                ..BoundedOptions::default()
            },
        );
        assert_eq!(full.status, BoundedStatus::Optimal);
        assert_eq!(part.status, BoundedStatus::Optimal);
    }

    #[test]
    fn pivot_budget_trips_instead_of_solving() {
        // A ≥-demand LP needs phase-1 pivots; a budget of 1 pivot cannot
        // reach optimality and must stop with a typed budget status, not
        // spin or stall.
        let mut lp: LpProblem<f64> = LpProblem::new();
        let x = lp.add_var(1.0);
        let y = lp.add_var(1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 2.0)], Cmp::Ge, 4.0);
        lp.add_constraint(vec![(x, 3.0), (y, 1.0)], Cmp::Ge, 6.0);
        let s = sf(&lp);
        let out = solve_bounded_f64_with(
            &s,
            &BoundedOptions {
                pivot_budget: 1,
                ..BoundedOptions::default()
            },
        );
        assert_eq!(out.status, BoundedStatus::Budget(BudgetKind::Pivots));
        assert!(out.basis.is_empty(), "a budget stop is not a verdict");
        // An ample budget solves normally.
        let ok = solve_bounded_f64_with(
            &s,
            &BoundedOptions {
                pivot_budget: 10_000,
                ..BoundedOptions::default()
            },
        );
        assert_eq!(ok.status, BoundedStatus::Optimal);
    }

    #[test]
    fn zero_budgets_mean_unlimited() {
        let mut lp: LpProblem<f64> = LpProblem::new();
        let x = lp.add_var(1.0);
        lp.add_constraint(vec![(x, 1.0)], Cmp::Ge, 3.0);
        let out = solve_bounded_f64_with(&sf(&lp), &BoundedOptions::default());
        assert_eq!(out.status, BoundedStatus::Optimal);
    }

    #[test]
    fn elapsed_time_budget_trips() {
        // A zero-length wall-clock budget must trip within the check
        // cadence on any instance that iterates at all.
        let mut lp: LpProblem<f64> = LpProblem::new();
        let n = 40;
        let vars: Vec<usize> = (0..n).map(|i| lp.add_var(1.0 + (i % 7) as f64)).collect();
        for w in vars.windows(2) {
            lp.add_constraint(vec![(w[0], 1.0), (w[1], 1.0)], Cmp::Ge, 2.0);
        }
        let s = sf(&lp);
        let out = solve_bounded_f64_with(
            &s,
            &BoundedOptions {
                time_budget: Some(std::time::Duration::ZERO),
                ..BoundedOptions::default()
            },
        );
        // Either the solve finished inside the first TIME_CHECK_EVERY
        // iterations (legal) or it tripped the time budget; it must never
        // claim any other failure.
        assert!(
            matches!(
                out.status,
                BoundedStatus::Optimal | BoundedStatus::Budget(BudgetKind::Time)
            ),
            "unexpected status {:?}",
            out.status
        );
    }
}

//! A small modeling layer: variables, linear constraints, minimization
//! objective. All variables are non-negative; finite upper bounds can be
//! attached two ways:
//!
//! * [`LpProblem::set_upper`] — an **implicit** bound `x_v ≤ u` carried on
//!   the variable itself. The bounded revised simplex
//!   ([`crate::simplex::solve_revised`]) handles these inside the pivoting
//!   rules, so they never become tableau rows; the dense solvers
//!   materialize them as rows internally via [`LpProblem::bounds_as_rows`].
//! * [`LpProblem::bound_var`] — an **explicit** `≤` row. This is the seed
//!   formulation, kept as the differential-test oracle: the two encodings
//!   must produce bit-identical optima under every backend.
//!
//! **Variable upper bounds** (VUBs) `x ≤ y` — one variable capped by
//! another — get the same dual treatment: [`LpProblem::set_vub`] registers
//! the cap as a *family* (the bound variable `y` is the family's key, `x`
//! one of its dependents) that the revised simplex handles inside its
//! pivoting rules (Schrage-style: dependents may rest *glued* to their
//! key, see [`crate::bounds`]), while the dense solvers materialize each
//! cap as an explicit `x − y ≤ 0` row via [`LpProblem::vubs_as_rows`].
//! Families are flat: a key cannot itself carry a VUB and a dependent
//! cannot serve as a key (no chains).

use crate::scalar::Scalar;

/// Index of a decision variable.
pub type VarId = usize;

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `Σ a_i x_i ≤ b`
    Le,
    /// `Σ a_i x_i ≥ b`
    Ge,
    /// `Σ a_i x_i = b`
    Eq,
}

/// One linear constraint in sparse form.
#[derive(Debug, Clone)]
pub struct Constraint<S> {
    /// `(variable, coefficient)` pairs; repeated variables are summed.
    pub terms: Vec<(VarId, S)>,
    /// Sense.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: S,
}

/// A linear program `min c·x  s.t.  constraints, 0 ≤ x ≤ u` (with `u`
/// componentwise optional).
#[derive(Debug, Clone)]
pub struct LpProblem<S> {
    objective: Vec<S>,
    constraints: Vec<Constraint<S>>,
    upper: Vec<Option<S>>,
    /// Per variable: the key variable bounding it from above (`x ≤ key`).
    vub: Vec<Option<VarId>>,
    /// Per variable: how many dependents name it as their key.
    vub_dependents: Vec<u32>,
}

impl<S: Scalar> Default for LpProblem<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Scalar> LpProblem<S> {
    /// Empty problem.
    pub fn new() -> Self {
        LpProblem {
            objective: Vec::new(),
            constraints: Vec::new(),
            upper: Vec::new(),
            vub: Vec::new(),
            vub_dependents: Vec::new(),
        }
    }

    /// Adds a variable with objective coefficient `cost`; returns its id.
    pub fn add_var(&mut self, cost: S) -> VarId {
        self.objective.push(cost);
        self.upper.push(None);
        self.vub.push(None);
        self.vub_dependents.push(0);
        self.objective.len() - 1
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds `Σ terms cmp rhs`.
    pub fn add_constraint(&mut self, terms: Vec<(VarId, S)>, cmp: Cmp, rhs: S) {
        debug_assert!(
            terms.iter().all(|&(v, _)| v < self.num_vars()),
            "unknown variable"
        );
        self.constraints.push(Constraint { terms, cmp, rhs });
    }

    /// Adds the upper bound `x_v ≤ ub` as an explicit row (the dense-oracle
    /// encoding; see the module docs).
    pub fn bound_var(&mut self, v: VarId, ub: S) {
        self.add_constraint(vec![(v, S::one())], Cmp::Le, ub);
    }

    /// Attaches the implicit bound `x_v ≤ ub` to the variable itself (no
    /// row is created). Repeated calls keep the tighter bound.
    pub fn set_upper(&mut self, v: VarId, ub: S) {
        debug_assert!(!ub.is_neg(), "upper bound below the lower bound 0");
        let keep = matches!(&self.upper[v],
            Some(old) if old.cmp_s(&ub) != std::cmp::Ordering::Greater);
        if !keep {
            self.upper[v] = Some(ub);
        }
    }

    /// The implicit upper bound of `v`, if any.
    pub fn upper(&self, v: VarId) -> Option<&S> {
        self.upper[v].as_ref()
    }

    /// Whether any variable carries an implicit upper bound.
    pub fn has_upper_bounds(&self) -> bool {
        self.upper.iter().any(|u| u.is_some())
    }

    /// Registers the variable upper bound `x_x ≤ x_key` as a VUB family
    /// membership (no row is created). Families must stay flat: `key` may
    /// not itself carry a VUB and `x` may not already serve as a key.
    /// A repeated call replaces `x`'s previous key.
    ///
    /// # Panics
    ///
    /// On `x == key`, on a chained family, or on unknown variables.
    pub fn set_vub(&mut self, x: VarId, key: VarId) {
        assert!(
            x < self.num_vars() && key < self.num_vars(),
            "unknown variable"
        );
        assert_ne!(x, key, "a variable cannot bound itself");
        assert!(
            self.vub[key].is_none(),
            "VUB chains are not supported: the key variable has a VUB itself"
        );
        assert!(
            self.vub_dependents[x] == 0,
            "VUB chains are not supported: the dependent serves as a key"
        );
        if let Some(old) = self.vub[x].replace(key) {
            self.vub_dependents[old] -= 1;
        }
        self.vub_dependents[key] += 1;
    }

    /// The VUB key of `v` (the variable bounding it from above), if any.
    pub fn vub(&self, v: VarId) -> Option<VarId> {
        self.vub[v]
    }

    /// Whether any variable carries a VUB.
    pub fn has_vubs(&self) -> bool {
        self.vub.iter().any(|k| k.is_some())
    }

    /// A copy of the problem with every VUB materialized as an explicit
    /// `x − key ≤ 0` row (appended after the original rows, in variable
    /// order) and the VUB registry cleared. Used by the dense solvers and
    /// the exact fallback; duals of the appended rows are dropped before
    /// results reach callers.
    pub fn vubs_as_rows(&self) -> LpProblem<S> {
        let mut out = LpProblem {
            objective: self.objective.clone(),
            constraints: self.constraints.clone(),
            upper: self.upper.clone(),
            vub: vec![None; self.vub.len()],
            vub_dependents: vec![0; self.vub.len()],
        };
        for (v, key) in self.vub.iter().enumerate() {
            if let Some(key) = key {
                out.add_constraint(
                    vec![(v, S::one()), (*key, S::one().neg())],
                    Cmp::Le,
                    S::zero(),
                );
            }
        }
        out
    }

    /// A copy of the problem with every implicit bound materialized as an
    /// explicit `≤` row (appended after the original rows, in variable
    /// order) and the implicit bounds cleared. Used by the dense solvers
    /// and the exact fallback; duals of the appended rows are dropped
    /// before results reach callers.
    pub fn bounds_as_rows(&self) -> LpProblem<S> {
        let mut out = LpProblem {
            objective: self.objective.clone(),
            constraints: self.constraints.clone(),
            upper: vec![None; self.upper.len()],
            vub: self.vub.clone(),
            vub_dependents: self.vub_dependents.clone(),
        };
        for (v, ub) in self.upper.iter().enumerate() {
            if let Some(ub) = ub {
                out.bound_var(v, ub.clone());
            }
        }
        out
    }

    /// Objective coefficients.
    pub fn objective(&self) -> &[S] {
        &self.objective
    }

    /// The constraint rows.
    pub fn constraints(&self) -> &[Constraint<S>] {
        &self.constraints
    }

    /// Evaluates the objective at `x`.
    pub fn objective_value(&self, x: &[S]) -> S {
        let mut acc = S::zero();
        for (c, xi) in self.objective.iter().zip(x) {
            acc = acc.add(&c.mul(xi));
        }
        acc
    }

    /// Checks primal feasibility of `x` (including `0 ≤ x ≤ u`).
    pub fn is_feasible(&self, x: &[S]) -> bool {
        if x.len() != self.num_vars() || x.iter().any(|v| v.is_neg()) {
            return false;
        }
        if x.iter()
            .zip(&self.upper)
            .any(|(v, u)| matches!(u, Some(u) if v.sub(u).is_pos()))
        {
            return false;
        }
        if x.iter()
            .zip(&self.vub)
            .any(|(v, k)| matches!(k, Some(k) if v.sub(&x[*k]).is_pos()))
        {
            return false;
        }
        self.constraints.iter().all(|c| {
            let mut lhs = S::zero();
            for (v, a) in &c.terms {
                lhs = lhs.add(&a.mul(&x[*v]));
            }
            match c.cmp {
                Cmp::Le => !lhs.sub(&c.rhs).is_pos(),
                Cmp::Ge => !c.rhs.sub(&lhs).is_pos(),
                Cmp::Eq => lhs.sub(&c.rhs).is_zero_s(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::Rat;

    #[test]
    fn build_and_evaluate() {
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(Rat::from_int(1));
        let y = lp.add_var(Rat::from_int(2));
        lp.add_constraint(
            vec![(x, Rat::ONE), (y, Rat::ONE)],
            Cmp::Ge,
            Rat::from_int(3),
        );
        lp.bound_var(x, Rat::from_int(2));
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_constraints(), 2);
        let sol = [Rat::from_int(2), Rat::from_int(1)];
        assert!(lp.is_feasible(&sol));
        assert_eq!(lp.objective_value(&sol), Rat::from_int(4));
        assert!(!lp.is_feasible(&[Rat::from_int(3), Rat::ZERO])); // violates bound
        assert!(!lp.is_feasible(&[Rat::from_int(1), Rat::ONE])); // violates Ge
        assert!(!lp.is_feasible(&[Rat::from_int(-1), Rat::from_int(4)])); // negativity
    }

    #[test]
    fn implicit_bounds_roundtrip() {
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(Rat::ONE);
        let y = lp.add_var(Rat::ONE);
        lp.add_constraint(
            vec![(x, Rat::ONE), (y, Rat::ONE)],
            Cmp::Ge,
            Rat::from_int(3),
        );
        assert!(!lp.has_upper_bounds());
        lp.set_upper(x, Rat::from_int(2));
        lp.set_upper(x, Rat::from_int(5)); // looser: ignored
        assert_eq!(lp.upper(x), Some(&Rat::from_int(2)));
        assert_eq!(lp.upper(y), None);
        assert!(lp.has_upper_bounds());
        // Feasibility honours the implicit bound…
        assert!(!lp.is_feasible(&[Rat::from_int(3), Rat::ZERO]));
        assert!(lp.is_feasible(&[Rat::from_int(2), Rat::ONE]));
        // …and materialization moves it into a row.
        let rows = lp.bounds_as_rows();
        assert!(!rows.has_upper_bounds());
        assert_eq!(rows.num_constraints(), 2);
        assert!(!rows.is_feasible(&[Rat::from_int(3), Rat::ZERO]));
    }

    #[test]
    fn vub_registry_roundtrip() {
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(Rat::ONE);
        let y = lp.add_var(Rat::ONE);
        lp.add_constraint(
            vec![(x, Rat::ONE), (y, Rat::ONE)],
            Cmp::Ge,
            Rat::from_int(2),
        );
        assert!(!lp.has_vubs());
        lp.set_vub(x, y);
        assert!(lp.has_vubs());
        assert_eq!(lp.vub(x), Some(y));
        assert_eq!(lp.vub(y), None);
        // Feasibility honours the VUB…
        assert!(!lp.is_feasible(&[Rat::from_int(2), Rat::ZERO]));
        assert!(lp.is_feasible(&[Rat::ONE, Rat::ONE]));
        // …and materialization moves it into a row.
        let rows = lp.vubs_as_rows();
        assert!(!rows.has_vubs());
        assert_eq!(rows.num_constraints(), 2);
        assert!(!rows.is_feasible(&[Rat::from_int(2), Rat::ZERO]));
        // bounds_as_rows keeps the registry intact.
        lp.set_upper(y, Rat::from_int(3));
        let b = lp.bounds_as_rows();
        assert_eq!(b.vub(x), Some(y));
    }

    #[test]
    #[should_panic(expected = "chains")]
    fn vub_chains_rejected() {
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(Rat::ONE);
        let y = lp.add_var(Rat::ONE);
        let z = lp.add_var(Rat::ONE);
        lp.set_vub(x, y);
        lp.set_vub(y, z); // y is already a key
    }

    #[test]
    fn set_upper_keeps_the_tighter_bound() {
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(Rat::ONE);
        lp.set_upper(x, Rat::from_int(5));
        lp.set_upper(x, Rat::from_int(2));
        assert_eq!(lp.upper(x), Some(&Rat::from_int(2)));
    }
}

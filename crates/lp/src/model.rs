//! A small modeling layer: variables, linear constraints, minimization
//! objective. All variables are non-negative (which is all the paper's LPs
//! need); upper bounds are expressed as explicit `≤` rows by the caller or
//! via [`LpProblem::bound_var`].

use crate::scalar::Scalar;

/// Index of a decision variable.
pub type VarId = usize;

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `Σ a_i x_i ≤ b`
    Le,
    /// `Σ a_i x_i ≥ b`
    Ge,
    /// `Σ a_i x_i = b`
    Eq,
}

/// One linear constraint in sparse form.
#[derive(Debug, Clone)]
pub struct Constraint<S> {
    /// `(variable, coefficient)` pairs; repeated variables are summed.
    pub terms: Vec<(VarId, S)>,
    /// Sense.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: S,
}

/// A linear program `min c·x  s.t.  constraints, x ≥ 0`.
#[derive(Debug, Clone)]
pub struct LpProblem<S> {
    objective: Vec<S>,
    constraints: Vec<Constraint<S>>,
}

impl<S: Scalar> Default for LpProblem<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Scalar> LpProblem<S> {
    /// Empty problem.
    pub fn new() -> Self {
        LpProblem {
            objective: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Adds a variable with objective coefficient `cost`; returns its id.
    pub fn add_var(&mut self, cost: S) -> VarId {
        self.objective.push(cost);
        self.objective.len() - 1
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds `Σ terms cmp rhs`.
    pub fn add_constraint(&mut self, terms: Vec<(VarId, S)>, cmp: Cmp, rhs: S) {
        debug_assert!(
            terms.iter().all(|&(v, _)| v < self.num_vars()),
            "unknown variable"
        );
        self.constraints.push(Constraint { terms, cmp, rhs });
    }

    /// Adds the upper bound `x_v ≤ ub` as a row.
    pub fn bound_var(&mut self, v: VarId, ub: S) {
        self.add_constraint(vec![(v, S::one())], Cmp::Le, ub);
    }

    /// Objective coefficients.
    pub fn objective(&self) -> &[S] {
        &self.objective
    }

    /// The constraint rows.
    pub fn constraints(&self) -> &[Constraint<S>] {
        &self.constraints
    }

    /// Evaluates the objective at `x`.
    pub fn objective_value(&self, x: &[S]) -> S {
        let mut acc = S::zero();
        for (c, xi) in self.objective.iter().zip(x) {
            acc = acc.add(&c.mul(xi));
        }
        acc
    }

    /// Checks primal feasibility of `x` (including `x ≥ 0`).
    pub fn is_feasible(&self, x: &[S]) -> bool {
        if x.len() != self.num_vars() || x.iter().any(|v| v.is_neg()) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let mut lhs = S::zero();
            for (v, a) in &c.terms {
                lhs = lhs.add(&a.mul(&x[*v]));
            }
            match c.cmp {
                Cmp::Le => !lhs.sub(&c.rhs).is_pos(),
                Cmp::Ge => !c.rhs.sub(&lhs).is_pos(),
                Cmp::Eq => lhs.sub(&c.rhs).is_zero_s(),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::Rat;

    #[test]
    fn build_and_evaluate() {
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(Rat::from_int(1));
        let y = lp.add_var(Rat::from_int(2));
        lp.add_constraint(
            vec![(x, Rat::ONE), (y, Rat::ONE)],
            Cmp::Ge,
            Rat::from_int(3),
        );
        lp.bound_var(x, Rat::from_int(2));
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_constraints(), 2);
        let sol = [Rat::from_int(2), Rat::from_int(1)];
        assert!(lp.is_feasible(&sol));
        assert_eq!(lp.objective_value(&sol), Rat::from_int(4));
        assert!(!lp.is_feasible(&[Rat::from_int(3), Rat::ZERO])); // violates bound
        assert!(!lp.is_feasible(&[Rat::from_int(1), Rat::ONE])); // violates Ge
        assert!(!lp.is_feasible(&[Rat::from_int(-1), Rat::from_int(4)])); // negativity
    }
}

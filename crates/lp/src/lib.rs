//! # abt-lp
//!
//! A self-contained linear-programming substrate: a dense two-phase primal
//! simplex solver over a flat row-major tableau, generic over an exact
//! `i128` rational scalar (so the §3 rounding's case analysis is
//! noise-free) or `f64`; a float-first **hybrid** solve ([`solve_hybrid`])
//! that runs the search in `f64` and re-verifies the terminal basis
//! exactly; and the bounded-variable **revised** hybrid ([`solve_revised`])
//! — implicit `[0, u]` variable bounds *and* Schrage-style variable upper
//! bounds `x ≤ y` ([`LpProblem::set_vub`]) handled by the pivoting rules
//! ([`bounds`]), partial pricing, and exact verification through a sparse
//! rational LU of the (key-column-augmented) basis matrix ([`lu`]) — the
//! default path for the active-time LPs.
//!
//! The allowed offline dependency set contains no LP solver (the paper's
//! reproduction band notes the thin LP ecosystem), so this crate implements
//! simplex from scratch; see `DESIGN.md` §2.

#![warn(missing_docs)]

pub mod bounds;
pub mod lu;
pub mod model;
pub mod rational;
pub mod scalar;
pub mod simplex;

pub use bounds::{
    solve_bounded_f64, solve_bounded_f64_with, BoundedBasis, BoundedOptions, BoundedStatus,
    StandardForm, VarState, DEFAULT_PRICING_WINDOW,
};
pub use lu::SparseLu;
pub use model::{Cmp, Constraint, LpProblem, VarId};
pub use rational::Rat;
pub use scalar::{Scalar, F64_EPS};
pub use simplex::{
    solve, solve_hybrid, solve_hybrid_report, solve_revised, solve_revised_report,
    solve_revised_with, HybridReport, LpSolution, LpStatus, RevisedOptions, SolveStats,
};

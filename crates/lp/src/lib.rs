//! # abt-lp
//!
//! A self-contained linear-programming substrate: a dense two-phase primal
//! simplex solver over a flat row-major tableau, generic over an exact
//! `i128` rational scalar (so the §3 rounding's case analysis is
//! noise-free) or `f64`; a float-first **hybrid** solve ([`solve_hybrid`])
//! that runs the search in `f64` and re-verifies the terminal basis
//! exactly; and the bounded-variable **revised** hybrid ([`solve_revised`])
//! — implicit `[0, u]` variable bounds *and* Schrage-style variable upper
//! bounds `x ≤ y` ([`LpProblem::set_vub`]) handled by the pivoting rules
//! ([`bounds`]), partial pricing, exact verification through a sparse
//! rational LU of the (key-column-augmented) basis matrix ([`lu`]), and
//! per-thread scratch reuse through the slab arena ([`arena`]) — the
//! default path for the active-time LPs. The [`warm`] module adds
//! **warm starts**: [`BasisSnapshot`]s of finished solves re-installed
//! into structurally identical problems ([`solve_revised_warm`]), with
//! the same exact certification, so streams of sibling LPs skip most of
//! the pivot work.
//!
//! The allowed offline dependency set contains no LP solver (the paper's
//! reproduction band notes the thin LP ecosystem), so this crate implements
//! simplex from scratch; see `DESIGN.md` §2 and the repo-root
//! `ARCHITECTURE.md` for the three solver generations.
//!
//! # Example
//!
//! Build a small LP with an implicit constant bound and a VUB family, and
//! solve it through the unified entry point ([`solve_lp`]) — the search
//! runs in `f64`, the answer is certified (and returned) in exact
//! rationals, with the certification itself layered: a directed-rounding
//! interval tier ([`interval`]) discharges most proofs, escalating to
//! exact rationals only when an enclosure straddles
//! ([`CertifyMode::IntervalThenExact`], the default):
//!
//! ```
//! use abt_lp::{solve_lp, Cmp, LpOptions, LpProblem, LpStatus, Rat};
//!
//! // min −x − z  s.t.  x + y + z ≥ 1,  y ≤ 4 (implicit bound),
//! //                   x ≤ y (VUB family: key y, dependent x), z ≤ 2.
//! let mut lp: LpProblem<Rat> = LpProblem::new();
//! let x = lp.add_var(Rat::from_int(-1));
//! let y = lp.add_var(Rat::ZERO);
//! let z = lp.add_var(Rat::from_int(-1));
//! lp.add_constraint(
//!     vec![(x, Rat::ONE), (y, Rat::ONE), (z, Rat::ONE)],
//!     Cmp::Ge,
//!     Rat::ONE,
//! );
//! lp.set_upper(y, Rat::from_int(4)); // never becomes a row
//! lp.set_upper(z, Rat::from_int(2));
//! lp.set_vub(x, y); // x rides glued to its key inside the pivoting rules
//!
//! let rep = solve_lp(&lp, &LpOptions::new()).expect("clean solve");
//! assert_eq!(rep.solution.status, LpStatus::Optimal);
//! // Optimum: x = y = 4 (x glued to its key at the key's bound), z = 2.
//! assert_eq!(rep.solution.objective, Rat::from_int(-6));
//! assert!(lp.is_feasible(&rep.solution.x));
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod arena;
pub mod bounds;
pub mod interval;
pub mod lu;
pub mod model;
pub mod rational;
pub mod scalar;
pub mod simplex;
pub mod warm;

pub use abt_core::error::{BudgetKind, SolveFailure};
pub use api::{solve_lp, LpOptions, LpReport, SolverBackend};
pub use arena::{with_arena, ArenaStats, SolveArena};
pub use bounds::{
    solve_bounded_f64, solve_bounded_f64_warm_with, solve_bounded_f64_with, BoundedBasis,
    BoundedOptions, BoundedStatus, StandardForm, VarState, DEFAULT_PRICING_WINDOW,
    TIME_CHECK_EVERY,
};
pub use interval::Iv;
pub use lu::SparseLu;
pub use model::{Cmp, Constraint, LpProblem, VarId};
pub use rational::Rat;
pub use scalar::{Scalar, F64_EPS};
pub use simplex::{
    solve, CertifyMode, HybridReport, LpSolution, LpStatus, RevisedOptions, SolveStats,
};
#[allow(deprecated)] // the legacy names stay re-exported through their deprecation window
pub use simplex::{
    solve_hybrid, solve_hybrid_report, solve_revised, solve_revised_report, solve_revised_with,
    try_solve_revised_with,
};
#[allow(deprecated)] // the legacy names stay re-exported through their deprecation window
pub use warm::{solve_revised_warm, try_solve_revised_cold, try_solve_revised_warm};
pub use warm::{BasisSnapshot, WarmReport};

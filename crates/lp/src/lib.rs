//! # abt-lp
//!
//! A self-contained linear-programming substrate: a dense two-phase primal
//! simplex solver, generic over an exact `i128` rational scalar (default for
//! the paper's active-time LPs, so the §3 rounding's case analysis is
//! noise-free) or `f64` (for stress scales).
//!
//! The allowed offline dependency set contains no LP solver (the paper's
//! reproduction band notes the thin LP ecosystem), so this crate implements
//! simplex from scratch; see `DESIGN.md` §2.

#![warn(missing_docs)]

pub mod model;
pub mod rational;
pub mod scalar;
pub mod simplex;

pub use model::{Cmp, Constraint, LpProblem, VarId};
pub use rational::Rat;
pub use scalar::{Scalar, F64_EPS};
pub use simplex::{solve, LpSolution, LpStatus};

//! Simplex solvers: a dense two-phase primal simplex over a flat tableau,
//! a float-first **hybrid** mode for exact-rational problems, and the
//! bounded-variable **revised** hybrid ([`solve_revised`]) that keeps
//! variable bounds out of the tableau and verifies terminal bases with a
//! sparse exact LU.
//!
//! # Tableau layout
//!
//! The tableau is a single row-major arena `a: Vec<S>` of `rows` rows with
//! stride `cols + 1`; the last entry of every row is the RHS. Row `i` is
//! the slice `a[i*stride .. (i+1)*stride]`, walked with
//! [`chunks_exact`](slice::chunks_exact) — one allocation, pure index
//! arithmetic, linear scans. A pivot normalizes the pivot row in place,
//! snapshots it into a reused `scratch` buffer, and then streams every
//! other row once, skipping rows whose pivot-column entry is zero and,
//! within a row, scratch entries that are exactly zero (rational tableaus
//! of the paper's LPs are sparse, so both skips matter).
//!
//! # Solve modes
//!
//! * [`solve`] — the classic generic path: two-phase primal simplex in the
//!   scalar type `S` (exact [`Rat`] or tolerance-
//!   aware `f64`). Anti-cycling: Dantzig's rule with an automatic permanent
//!   switch to Bland's rule after a run of degenerate pivots.
//! * [`solve_hybrid`] — for `LpProblem<Rat>`: solve the whole LP in `f64`
//!   first, then *re-verify the terminal basis exactly*. Exactness is only
//!   needed at the final vertex, not during the search, so this is
//!   typically an order of magnitude faster than pivoting in rationals.
//!
//! # Hybrid verification contract
//!
//! `solve_hybrid` returns **bit-identical status and objective** to the
//! pure-rational [`solve`] (`x`/`duals` may differ between alternate
//! optimal bases, but are always an exactly-optimal vertex and exactly
//! feasible duals). The steps:
//!
//! 1. Solve a lossless `f64` image of the LP (coefficients in the paper's
//!    LPs are tiny integers, exactly representable).
//! 2. If the float solve claims `Optimal`, factor its terminal basis
//!    *set* with a [`SparseLu`] in exact rationals (a singular proposal
//!    fails the step) — the dense exact tableau is never re-pivoted.
//! 3. Check, exactly: primal feasibility (`B·x_B = b` with all basic
//!    values ≥ 0), artificials out (every basic artificial at value 0),
//!    and dual feasibility (reduced costs of nonbasic non-artificial
//!    columns ≥ 0 against the duals from `Bᵀ·y = c_B`). The sweep is
//!    discharged by the [`CertifyMode`] tier policy — the directed-
//!    rounding interval tier first under the default, escalating to the
//!    exact rational sweep only on straddles. Together these certify the
//!    basis is exactly optimal.
//! 4. On any failure — or a float claim of `Infeasible`/`Unbounded`, which
//!    tolerance-based pivoting cannot certify — fall back to the pure
//!    exact simplex. The fallback is the correctness backstop; the float
//!    pass is only ever an accelerator.
//!
//! Two phases: artificials for `≥`/`=` rows; redundant rows are left
//! harmlessly basic at zero after phase 1 with their artificial columns
//! barred from re-entering.
//!
//! # Bounded-variable revised hybrid
//!
//! [`solve_revised`] upgrades the hybrid scheme along both axes named in
//! the roadmap:
//!
//! * the `f64` search is the bounded **revised** simplex of
//!   [`crate::bounds`]: implicit `[0, u]` variable bounds (plain `x ≤ const`
//!   rows vanish from the model when callers use
//!   [`LpProblem::set_upper`]), Schrage-style **variable upper bounds**
//!   (`x ≤ y` rows vanish when callers use [`LpProblem::set_vub`] —
//!   dependents rest glued to their key and basic keys carry augmented
//!   key columns), nonbasic-at-upper states, bound flips, and a
//!   periodically refactorized sparse LU basis with product-form updates;
//!   and
//! * the exact pass no longer refactorizes a dense tableau
//!   (`O(m²·cols)`): it builds a [`SparseLu`] of the terminal basis matrix
//!   in exact rationals — near-linear in `nnz(B)` on the paper's LPs — and
//!   certifies exact optimality **per resting state**. With the augmented
//!   key columns `Ā_k = A_k + Σ_{glued j} A_j` and costs
//!   `c̄_k = c_k + Σ_{glued j} c_j`: primal feasibility
//!   `B̄·x_B = b − Σ_{j at a fixed value} val_j·A_j` with `0 ≤ x_B ≤ u_B`
//!   and every basic dependent below its key's value, every basic
//!   artificial exactly 0, and duals `y` from `B̄ᵀ·y = c̄_B` whose reduced
//!   costs satisfy `d̄_j ≥ 0` at lower bounds, `d̄_j ≤ 0` at upper bounds
//!   (`d̄` augmented over glued dependents for keys), and `d_j ≤ 0` for
//!   every glued dependent (the VUB multiplier `λ_j = −d_j` must be
//!   nonnegative). Together with complementary slackness — automatic from
//!   the basis/glue structure — this certifies exact optimality.
//!
//! The contract matches [`solve_hybrid`]: **bit-identical status and
//! objective** to the pure-rational [`solve`], with any unverifiable float
//! outcome falling back to the exact dense solver. For problems with
//! implicit bounds or VUBs, the dense solvers (and the fallback)
//! materialize each as a trailing `≤` row via
//! [`LpProblem::bounds_as_rows`]/[`LpProblem::vubs_as_rows`] and drop the
//! extra duals, so every backend accepts every problem. Note that with
//! implicit bounds strong duality reads
//! `b·y + Σ_{j at upper} u_j·d_j = c·x`: the row duals alone no longer
//! account for the bound constraints' contribution.

#![allow(clippy::needless_range_loop)] // index loops mirror the tableau math

use crate::bounds::{
    solve_bounded_f64_with, BoundedBasis, BoundedOptions, BoundedStatus, StandardForm, VarState,
};
use crate::interval::Iv;
use crate::lu::SparseLu;
use crate::model::{Cmp, LpProblem};
use crate::rational::Rat;
use crate::scalar::Scalar;
use abt_core::error::{BudgetKind, SolveFailure};
use abt_core::faultinject;
use std::time::Instant;

/// Outcome of a solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

/// An LP solution.
#[derive(Debug, Clone)]
pub struct LpSolution<S> {
    /// Solve outcome.
    pub status: LpStatus,
    /// Optimal objective value (meaningful only when `Optimal`).
    pub objective: S,
    /// Values of the original variables (meaningful only when `Optimal`).
    pub x: Vec<S>,
    /// Dual values, one per constraint, in the sign convention of
    /// `min c·x` duality: `y_i ≤ 0` for `≤` rows, `y_i ≥ 0` for `≥` rows,
    /// free for `=` rows; at optimality `b·y = c·x` (strong duality) and
    /// `Σ_i y_i a_ij ≤ c_j` for every variable (dual feasibility). Empty
    /// unless `Optimal`.
    pub duals: Vec<S>,
}

/// Iteration/verification counters of a hybrid-style solve (all zero on
/// paths that do not track them, e.g. the dense hybrid's float pass).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Basis-changing pivots of the float pass.
    pub pivots: u64,
    /// Bound/VUB flips of the float pass (iterations without a basis
    /// change).
    pub bound_flips: u64,
    /// LU refactorizations of the float pass (periodic and
    /// VUB-structural).
    pub refactorizations: u64,
    /// Total wall time of the certification step (both tiers), in
    /// nanoseconds. Always `certify_interval_nanos + certify_exact_nanos`
    /// up to clock granularity.
    pub certify_nanos: u64,
    /// Wall time spent in the directed-rounding interval tier, in
    /// nanoseconds (zero under [`CertifyMode::Exact`]).
    pub certify_interval_nanos: u64,
    /// Wall time spent in exact rational arithmetic (LU factor, basic
    /// values, duals, and — on escalation or under
    /// [`CertifyMode::Exact`] — the full reduced-cost sweep), in
    /// nanoseconds.
    pub certify_exact_nanos: u64,
    /// Solves whose dual-feasibility sweep was discharged entirely by the
    /// interval tier (0 or 1 per solve; summable across solves).
    pub interval_accepts: u64,
    /// Solves whose interval sweep was inconclusive (straddling
    /// enclosures) and escalated to the exact reduced-cost sweep.
    pub interval_escalations: u64,
}

/// Result of [`solve_hybrid_report`]: the solution plus whether the exact
/// fallback had to run.
#[derive(Debug, Clone)]
pub struct HybridReport {
    /// The exact solution (same contract as [`solve`]).
    pub solution: LpSolution<Rat>,
    /// `true` iff the float-first pass could not be verified and the pure
    /// exact simplex ran. Expected to be rare; tests assert specific
    /// adversarial instances trip it.
    pub fallback: bool,
    /// Iteration/verification counters (see [`SolveStats`]).
    pub stats: SolveStats,
}

/// Number of consecutive degenerate pivots tolerated before switching to
/// Bland's rule.
const DEGENERATE_SWITCH: usize = 64;

/// Hard iteration cap (simplex with Bland's rule terminates; this is a
/// safety net against implementation bugs, not a tuning knob).
fn iteration_cap(rows: usize, cols: usize) -> usize {
    10_000 + 64 * (rows + cols)
}

/// The flat row-major tableau (see the module docs for the layout).
struct Tableau<S> {
    /// `rows × stride` arena; within a row the last entry is the RHS.
    a: Vec<S>,
    /// Reduced-cost row, length `stride`; last entry is −(objective value).
    cost: Vec<S>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Columns barred from entering (artificials in phase 2).
    barred: Vec<bool>,
    rows: usize,
    /// Column count; the arena stride is `cols + 1`.
    cols: usize,
    /// Reused snapshot of the normalized pivot row.
    scratch: Vec<S>,
}

impl<S: Scalar> Tableau<S> {
    #[inline]
    fn stride(&self) -> usize {
        self.cols + 1
    }

    #[inline]
    fn at(&self, row: usize, col: usize) -> &S {
        &self.a[row * self.stride() + col]
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let stride = self.stride();
        let zero = S::zero();
        let piv = self.a[row * stride + col].clone();
        debug_assert!(!piv.is_zero_s());
        // Normalize the pivot row and snapshot it.
        {
            let r = &mut self.a[row * stride..(row + 1) * stride];
            for v in r.iter_mut() {
                if *v != zero {
                    *v = v.div(&piv);
                }
            }
            r[col] = S::one();
            self.scratch.clear();
            self.scratch.extend_from_slice(r);
        }
        // Eliminate the pivot column from every other row in one linear
        // sweep over the arena.
        for (i, r) in self.a.chunks_exact_mut(stride).enumerate() {
            if i == row {
                continue;
            }
            let factor = r[col].clone();
            if factor.is_zero_s() {
                continue;
            }
            for (v, p) in r.iter_mut().zip(&self.scratch) {
                if *p != zero {
                    *v = v.sub(&factor.mul(p));
                }
            }
            r[col] = S::zero();
        }
        let factor = self.cost[col].clone();
        if !factor.is_zero_s() {
            for (v, p) in self.cost.iter_mut().zip(&self.scratch) {
                if *p != zero {
                    *v = v.sub(&factor.mul(p));
                }
            }
            self.cost[col] = S::zero();
        }
        self.basis[row] = col;
    }

    /// Runs the simplex loop on the current cost row. Returns `false` if
    /// unbounded.
    fn optimize(&mut self) -> bool {
        let mut bland = false;
        let mut degenerate_run = 0usize;
        let cap = iteration_cap(self.rows, self.cols);
        let stride = self.stride();
        for _ in 0..cap {
            // Entering column: negative reduced cost.
            let mut enter: Option<usize> = None;
            if bland {
                for j in 0..self.cols {
                    if !self.barred[j] && self.cost[j].is_neg() {
                        enter = Some(j);
                        break;
                    }
                }
            } else {
                let mut best: Option<(usize, S)> = None;
                for j in 0..self.cols {
                    if self.barred[j] || !self.cost[j].is_neg() {
                        continue;
                    }
                    match &best {
                        Some((_, b)) if self.cost[j].cmp_s(b) != std::cmp::Ordering::Less => {}
                        _ => best = Some((j, self.cost[j].clone())),
                    }
                }
                enter = best.map(|(j, _)| j);
            }
            let Some(col) = enter else { return true };
            // Leaving row: minimum ratio, Bland tie-break on basis index.
            let mut leave: Option<(usize, S)> = None;
            for (i, r) in self.a.chunks_exact(stride).enumerate() {
                if !r[col].is_pos() {
                    continue;
                }
                let ratio = r[self.cols].div(&r[col]);
                let better = match &leave {
                    None => true,
                    Some((li, lr)) => match ratio.cmp_s(lr) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Equal => self.basis[i] < self.basis[*li],
                        std::cmp::Ordering::Greater => false,
                    },
                };
                if better {
                    leave = Some((i, ratio));
                }
            }
            let Some((row, ratio)) = leave else {
                return false;
            };
            if ratio.is_zero_s() {
                degenerate_run += 1;
                if degenerate_run >= DEGENERATE_SWITCH {
                    bland = true;
                }
            } else {
                degenerate_run = 0;
            }
            self.pivot(row, col);
        }
        panic!("abt-lp: simplex iteration cap exceeded — please report this instance");
    }
}

/// A freshly built tableau plus the bookkeeping both solve paths need.
struct Built<S> {
    t: Tableau<S>,
    is_artificial: Vec<bool>,
    /// Per original row: (auxiliary column, its sign in the dual read-out,
    /// whether the row was flipped to normalize the RHS).
    row_aux: Vec<(usize, bool, bool)>,
    n_art: usize,
}

/// Builds the initial tableau: structural columns, slack/surplus columns,
/// artificials, and the slack/artificial starting basis. No cost row yet.
fn build<S: Scalar>(lp: &LpProblem<S>) -> Built<S> {
    let n = lp.num_vars();
    let m = lp.num_constraints();

    // Count auxiliary columns.
    let mut n_slack = 0;
    let mut n_art = 0;
    for c in lp.constraints() {
        // After RHS normalization the sense may flip; count accordingly.
        let rhs_neg = c.rhs.is_neg();
        let sense = match (c.cmp, rhs_neg) {
            (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
            (Cmp::Ge, false) | (Cmp::Le, true) => Cmp::Ge,
            (Cmp::Eq, _) => Cmp::Eq,
        };
        match sense {
            Cmp::Le => n_slack += 1,
            Cmp::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Cmp::Eq => n_art += 1,
        }
    }
    let cols = n + n_slack + n_art;
    let stride = cols + 1;
    let mut a: Vec<S> = vec![S::zero(); m * stride];
    let mut basis = vec![0usize; m];
    let mut is_artificial = vec![false; cols];
    let mut row_aux: Vec<(usize, bool, bool)> = Vec::with_capacity(m);

    let mut slack_at = n;
    let mut art_at = n + n_slack;
    for (i, c) in lp.constraints().iter().enumerate() {
        let row = &mut a[i * stride..(i + 1) * stride];
        let flip = c.rhs.is_neg();
        let sgn = if flip { S::one().neg() } else { S::one() };
        for (v, coef) in &c.terms {
            row[*v] = row[*v].add(&sgn.mul(coef));
        }
        row[cols] = sgn.mul(&c.rhs);
        let sense = match (c.cmp, flip) {
            (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
            (Cmp::Ge, false) | (Cmp::Le, true) => Cmp::Ge,
            (Cmp::Eq, _) => Cmp::Eq,
        };
        match sense {
            Cmp::Le => {
                row[slack_at] = S::one();
                basis[i] = slack_at;
                // slack column: y_i = −r_slack
                row_aux.push((slack_at, true, flip));
                slack_at += 1;
            }
            Cmp::Ge => {
                row[slack_at] = S::one().neg();
                // surplus column: y_i = +r_surplus
                row_aux.push((slack_at, false, flip));
                slack_at += 1;
                row[art_at] = S::one();
                is_artificial[art_at] = true;
                basis[i] = art_at;
                art_at += 1;
            }
            Cmp::Eq => {
                row[art_at] = S::one();
                is_artificial[art_at] = true;
                basis[i] = art_at;
                // artificial column: y_i = −r_artificial
                row_aux.push((art_at, true, flip));
                art_at += 1;
            }
        }
    }

    let t = Tableau {
        a,
        cost: vec![S::zero(); stride],
        basis,
        barred: vec![false; cols],
        rows: m,
        cols,
        scratch: Vec::with_capacity(stride),
    };
    Built {
        t,
        is_artificial,
        row_aux,
        n_art,
    }
}

/// Phase 1: minimize the sum of artificials. Returns `false` on
/// infeasibility. Afterwards artificials are driven out where possible and
/// barred from re-entering.
fn phase1<S: Scalar>(b: &mut Built<S>) -> bool {
    if b.n_art == 0 {
        return true;
    }
    let t = &mut b.t;
    let m = t.rows;
    let cols = t.cols;
    // Reduced costs: for column j, r_j = c1_j − Σ_{rows with artificial
    // basis} a_ij, where c1 is 1 on artificials. Artificial basis columns
    // start with r = 0.
    for j in 0..=cols {
        let mut r = if j < cols && b.is_artificial[j] {
            S::one()
        } else {
            S::zero()
        };
        for i in 0..m {
            if b.is_artificial[t.basis[i]] {
                r = r.sub(t.at(i, j));
            }
        }
        t.cost[j] = r;
    }
    let bounded = t.optimize();
    debug_assert!(bounded, "phase 1 cannot be unbounded");
    // Objective value is −cost[cols].
    if t.cost[cols].neg().is_pos() {
        return false;
    }
    // Drive artificials out of the basis where possible.
    for i in 0..m {
        if b.is_artificial[t.basis[i]] {
            if let Some(j) = (0..cols).find(|&j| !b.is_artificial[j] && !t.at(i, j).is_zero_s()) {
                t.pivot(i, j);
            }
            // Otherwise the row is redundant; its artificial stays basic
            // at value 0, and barring artificial columns keeps it there.
        }
    }
    for j in 0..cols {
        if b.is_artificial[j] {
            t.barred[j] = true;
        }
    }
    true
}

/// Installs the phase-2 reduced-cost row for the current basis:
/// `r_j = c_j − Σ_i c_{basis(i)} a_ij`.
fn set_phase2_costs<S: Scalar>(lp: &LpProblem<S>, b: &mut Built<S>) {
    let n = lp.num_vars();
    let t = &mut b.t;
    let real_cost = |j: usize| -> S {
        if j < n {
            lp.objective()[j].clone()
        } else {
            S::zero()
        }
    };
    for j in 0..=t.cols {
        let mut r = if j < t.cols { real_cost(j) } else { S::zero() };
        for i in 0..t.rows {
            let cb = real_cost(t.basis[i]);
            if !cb.is_zero_s() {
                r = r.sub(&cb.mul(t.at(i, j)));
            }
        }
        t.cost[j] = r;
    }
}

/// Reads the optimal solution out of a tableau whose cost row holds the
/// phase-2 reduced costs for its (optimal) basis.
fn extract<S: Scalar>(lp: &LpProblem<S>, b: &Built<S>) -> LpSolution<S> {
    let n = lp.num_vars();
    let t = &b.t;
    let mut x = vec![S::zero(); n];
    for i in 0..t.rows {
        if t.basis[i] < n {
            x[t.basis[i]] = t.at(i, t.cols).clone();
        }
    }
    // Duals from the reduced costs of each row's auxiliary column (the
    // classic y = c_B B⁻¹ read-out), undoing RHS-normalization flips.
    let duals = b
        .row_aux
        .iter()
        .map(|&(col, negate, flip)| {
            let mut y = if negate {
                t.cost[col].neg()
            } else {
                t.cost[col].clone()
            };
            if flip {
                y = y.neg();
            }
            y
        })
        .collect();
    let objective = lp.objective_value(&x);
    LpSolution {
        status: LpStatus::Optimal,
        objective,
        x,
        duals,
    }
}

fn failure<S: Scalar>(status: LpStatus) -> LpSolution<S> {
    LpSolution {
        status,
        objective: S::zero(),
        x: vec![],
        duals: vec![],
    }
}

/// Full two-phase solve returning the solution and the terminal basis
/// (one basic column per row; empty unless `Optimal`).
fn solve_internal<S: Scalar>(lp: &LpProblem<S>) -> (LpSolution<S>, Vec<usize>) {
    let mut b = build(lp);
    if !phase1(&mut b) {
        return (failure(LpStatus::Infeasible), vec![]);
    }
    set_phase2_costs(lp, &mut b);
    if !b.t.optimize() {
        return (failure(LpStatus::Unbounded), vec![]);
    }
    let basis = b.t.basis.clone();
    (extract(lp, &b), basis)
}

/// Solves `lp` to optimality (or detects infeasibility/unboundedness) in
/// the scalar type `S`. Implicit variable bounds and VUBs are materialized
/// as trailing rows internally; their duals are dropped.
pub fn solve<S: Scalar>(lp: &LpProblem<S>) -> LpSolution<S> {
    if lp.has_upper_bounds() || lp.has_vubs() {
        let rows = lp.vubs_as_rows().bounds_as_rows();
        let mut sol = solve_internal(&rows).0;
        sol.duals.truncate(lp.num_constraints());
        return sol;
    }
    solve_internal(lp).0
}

/// The lossless `f64` image of an exact-rational LP (bounds and VUBs
/// included).
pub(crate) fn to_f64(lp: &LpProblem<Rat>) -> LpProblem<f64> {
    let mut out: LpProblem<f64> = LpProblem::new();
    for c in lp.objective() {
        out.add_var(c.to_f64());
    }
    for v in 0..lp.num_vars() {
        if let Some(u) = lp.upper(v) {
            out.set_upper(v, u.to_f64());
        }
        if let Some(k) = lp.vub(v) {
            out.set_vub(v, k);
        }
    }
    for c in lp.constraints() {
        let terms = c.terms.iter().map(|&(v, ref a)| (v, a.to_f64())).collect();
        out.add_constraint(terms, c.cmp, c.rhs.to_f64());
    }
    out
}

/// Sparse exact view of the row-encoded tableau layout of [`build`]: the
/// same structural/slack/artificial column numbering and RHS
/// normalization, held as sparse columns so the LU-based dense certifier
/// never materializes (or pivots) the dense arena.
struct SparseBuilt {
    /// Per column: sparse `(row, value)` entries, rows ascending.
    cols: Vec<Vec<(usize, Rat)>>,
    /// Phase-2 cost per column (structural → objective, auxiliary → 0).
    cost: Vec<Rat>,
    /// Normalized (nonnegative) RHS per row.
    rhs: Vec<Rat>,
    is_artificial: Vec<bool>,
    /// Per row: whether RHS normalization flipped the row (undone in the
    /// dual read-out).
    row_flip: Vec<bool>,
}

/// Mirrors [`build`]'s column layout — structural `0..n`, then one
/// slack/surplus per inequality row, then artificials — as sparse exact
/// columns. Any drift from [`build`] would desynchronize the certifier
/// from the float pass's basis indices; the hybrid differential tests
/// pin the two together.
fn build_sparse(lp: &LpProblem<Rat>) -> SparseBuilt {
    let n = lp.num_vars();
    let m = lp.num_constraints();
    let mut n_slack = 0;
    let mut n_art = 0;
    for c in lp.constraints() {
        let sense = match (c.cmp, c.rhs.is_neg()) {
            (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
            (Cmp::Ge, false) | (Cmp::Le, true) => Cmp::Ge,
            (Cmp::Eq, _) => Cmp::Eq,
        };
        match sense {
            Cmp::Le => n_slack += 1,
            Cmp::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Cmp::Eq => n_art += 1,
        }
    }
    let cols_n = n + n_slack + n_art;
    let mut cols: Vec<Vec<(usize, Rat)>> = vec![Vec::new(); cols_n];
    let mut rhs = vec![Rat::ZERO; m];
    let mut is_artificial = vec![false; cols_n];
    let mut row_flip = vec![false; m];
    let mut slack_at = n;
    let mut art_at = n + n_slack;
    for (i, c) in lp.constraints().iter().enumerate() {
        let flip = c.rhs.is_neg();
        let sgn = if flip { Rat::ONE.neg() } else { Rat::ONE };
        row_flip[i] = flip;
        for (v, coef) in &c.terms {
            // Repeated variables accumulate, exactly as in the dense arena.
            let col = &mut cols[*v];
            match col.last_mut() {
                Some(e) if e.0 == i => e.1 = e.1.add(&sgn.mul(coef)),
                _ => col.push((i, sgn.mul(coef))),
            }
        }
        rhs[i] = sgn.mul(&c.rhs);
        let sense = match (c.cmp, flip) {
            (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
            (Cmp::Ge, false) | (Cmp::Le, true) => Cmp::Ge,
            (Cmp::Eq, _) => Cmp::Eq,
        };
        match sense {
            Cmp::Le => {
                cols[slack_at].push((i, Rat::ONE));
                slack_at += 1;
            }
            Cmp::Ge => {
                cols[slack_at].push((i, Rat::ONE.neg()));
                slack_at += 1;
                cols[art_at].push((i, Rat::ONE));
                is_artificial[art_at] = true;
                art_at += 1;
            }
            Cmp::Eq => {
                cols[art_at].push((i, Rat::ONE));
                is_artificial[art_at] = true;
                art_at += 1;
            }
        }
    }
    let mut cost = vec![Rat::ZERO; cols_n];
    cost[..n].copy_from_slice(lp.objective());
    SparseBuilt {
        cols,
        cost,
        rhs,
        is_artificial,
        row_flip,
    }
}

/// The exact rational reduced-cost sweep of the dense certifier: every
/// nonbasic non-artificial column must price out nonnegative.
fn dense_exact_sweep(sb: &SparseBuilt, in_basis: &[bool], y: &[Rat]) -> bool {
    for j in 0..sb.cols.len() {
        if in_basis[j] || sb.is_artificial[j] {
            continue;
        }
        let mut d = sb.cost[j];
        for (i, v) in &sb.cols[j] {
            d = d.sub(&y[*i].mul(v));
        }
        if d.is_neg() {
            return false;
        }
    }
    true
}

/// The directed-rounding interval tier of the dense certifier: the flat
/// (no VUB gluing) analogue of [`interval_dual_sweep`], with the same
/// per-column exact rescue and the same escalation cap.
fn dense_interval_sweep(sb: &SparseBuilt, in_basis: &[bool], y: &[Rat]) -> IvSweep {
    let ivy: Vec<Iv> = y.iter().map(Iv::from_rat).collect();
    let rescue_cap = 8 + sb.cols.len() / 8;
    let mut rescued = 0usize;
    for j in 0..sb.cols.len() {
        if in_basis[j] || sb.is_artificial[j] {
            continue;
        }
        let mut d = Iv::from_rat(&sb.cost[j]);
        for (i, v) in &sb.cols[j] {
            d = d - ivy[*i] * Iv::from_rat(v);
        }
        if d.proves_neg() {
            return IvSweep::Refuted;
        }
        if d.proves_nonneg() {
            continue;
        }
        rescued += 1;
        if rescued > rescue_cap {
            return IvSweep::Inconclusive;
        }
        let mut dx = sb.cost[j];
        for (i, v) in &sb.cols[j] {
            dx = dx.sub(&y[*i].mul(v));
        }
        if dx.is_neg() {
            return IvSweep::Refuted;
        }
    }
    IvSweep::Proven
}

/// Certifies `target` (a basis proposed by the float pass) exactly via a
/// sparse LU of the basis matrix — primal values and duals are solved
/// from the factorization instead of re-pivoting a dense exact tableau,
/// and the reduced-cost sweep is discharged by the tier policy in `mode`
/// (see [`CertifyMode`]). Returns the exact solution (bit-identical to
/// the old tableau read-out: basic values and duals are uniquely
/// determined by the basis) on success, `None` if the basis is singular,
/// primal infeasible, dual infeasible, or keeps an artificial at nonzero
/// value. An inconclusive interval sweep under `CertifyMode::Interval`
/// also returns `None`: the dense hybrid's fallback is its escalation
/// path.
fn verify_basis(
    lp: &LpProblem<Rat>,
    target: &[usize],
    mode: CertifyMode,
    tally: &mut CertifyTally,
) -> Option<LpSolution<Rat>> {
    let sb = build_sparse(lp);
    let m = sb.rhs.len();
    let cols_n = sb.cols.len();
    if target.len() != m {
        return None;
    }
    let mut in_basis = vec![false; cols_n];
    for &c in target {
        if c >= cols_n || std::mem::replace(&mut in_basis[c], true) {
            return None; // out of range or duplicated column
        }
    }
    let bcols: Vec<Vec<(usize, Rat)>> = target.iter().map(|&c| sb.cols[c].clone()).collect();
    let lu = SparseLu::factor(m, &bcols)?;
    // Exact primal feasibility: nonbasics rest at zero, `B·x_B = b`,
    // every basic value ≥ 0, and no artificial stuck at nonzero value.
    let xb = lu.solve(&sb.rhs);
    for (k, &c) in target.iter().enumerate() {
        if xb[k].is_neg() || (sb.is_artificial[c] && !xb[k].is_zero_s()) {
            return None;
        }
    }
    // Exact duals from `Bᵀ·y = c_B`, then the tiered reduced-cost sweep.
    let cb: Vec<Rat> = target.iter().map(|&c| sb.cost[c]).collect();
    let y = lu.solve_transposed(&cb);
    let dual_ok = match mode {
        CertifyMode::Exact => dense_exact_sweep(&sb, &in_basis, &y),
        CertifyMode::Interval | CertifyMode::IntervalThenExact => {
            let tick = Instant::now();
            let sweep = dense_interval_sweep(&sb, &in_basis, &y);
            tally.interval_nanos += tick.elapsed().as_nanos() as u64;
            match sweep {
                IvSweep::Proven => {
                    tally.interval_accepts = 1;
                    true
                }
                IvSweep::Refuted => false,
                IvSweep::Deadline => unreachable!("the dense certifier has no deadline"),
                IvSweep::Inconclusive => {
                    tally.interval_escalations = 1;
                    mode == CertifyMode::IntervalThenExact && dense_exact_sweep(&sb, &in_basis, &y)
                }
            }
        }
    };
    if !dual_ok {
        return None;
    }
    let n = lp.num_vars();
    let mut x = vec![Rat::ZERO; n];
    for (k, &c) in target.iter().enumerate() {
        if c < n {
            x[c] = xb[k];
        }
    }
    let objective = lp.objective_value(&x);
    let duals: Vec<Rat> = y
        .iter()
        .zip(&sb.row_flip)
        .map(|(yi, flip)| if *flip { yi.neg() } else { *yi })
        .collect();
    Some(LpSolution {
        status: LpStatus::Optimal,
        objective,
        x,
        duals,
    })
}

/// Float-first exact solve: runs the simplex in `f64`, re-verifies the
/// terminal basis in exact rationals, and falls back to the pure exact
/// simplex when verification fails (see the module docs for the
/// contract). Status and objective are always bit-identical to
/// [`solve`]`::<Rat>`.
#[deprecated(note = "use `solve_lp` with `SolverBackend::DenseHybrid`")]
pub fn solve_hybrid(lp: &LpProblem<Rat>) -> LpSolution<Rat> {
    solve_hybrid_core(lp, CertifyMode::default()).solution
}

/// [`solve_hybrid`] plus whether the exact fallback ran (for tests and
/// diagnostics).
#[deprecated(note = "use `solve_lp` with `SolverBackend::DenseHybrid`")]
pub fn solve_hybrid_report(lp: &LpProblem<Rat>) -> HybridReport {
    solve_hybrid_core(lp, CertifyMode::default())
}

/// The dense hybrid engine behind [`solve_hybrid_report`] and
/// [`crate::api::solve_lp`]'s `DenseHybrid` backend.
pub(crate) fn solve_hybrid_core(lp: &LpProblem<Rat>, mode: CertifyMode) -> HybridReport {
    if lp.has_upper_bounds() || lp.has_vubs() {
        // The dense hybrid works on the row encoding; recurse on the
        // materialized problem and drop the bound/VUB rows' duals.
        let rows = lp.vubs_as_rows().bounds_as_rows();
        let mut rep = solve_hybrid_core(&rows, mode);
        rep.solution.duals.truncate(lp.num_constraints());
        return rep;
    }
    let (fsol, fbasis) = solve_internal(&to_f64(lp));
    if fsol.status == LpStatus::Optimal {
        let certify = std::time::Instant::now();
        let mut tally = CertifyTally::default();
        if let Some(solution) = verify_basis(lp, &fbasis, mode, &mut tally) {
            let mut stats = SolveStats::default();
            apply_certify(&mut stats, certify.elapsed().as_nanos() as u64, &tally);
            return HybridReport {
                solution,
                fallback: false,
                stats,
            };
        }
    }
    HybridReport {
        solution: solve(lp),
        fallback: true,
        stats: SolveStats::default(),
    }
}

/// Tri-state outcome of the exact certifier ([`verify_bounded`]).
#[derive(Debug)]
pub(crate) enum Certified {
    /// Every exact check passed; the certified solution is attached.
    Verified(LpSolution<Rat>),
    /// Some exact check failed — the float proposal is singular, primal or
    /// dual infeasible, or keeps an artificial at a nonzero value. A
    /// verdict about the *proposal*, not the LP.
    Refuted,
    /// The certifier's wall-clock deadline passed before a verdict was
    /// reached. **Not** a verdict: the proposal may well be optimal.
    /// Callers must surface this as a budget trip, never silently treat
    /// it like a refutation.
    Deadline,
}

/// Verifies, in exact rationals, the terminal basis+state proposal of the
/// bounded `f64` revised simplex via a sparse LU of the basis matrix (see
/// the module docs for the per-resting-state certificate).
///
/// The optional `deadline` bounds the certification work: it is checked
/// at entry and between the expensive stages (after the LU factorization,
/// after the basic-value solve, after the dual solve, and periodically
/// inside the interval sweep), so an adversarial instance whose rationals
/// blow up cannot pin the certifier past its budget by more than one
/// stage.
///
/// `mode` selects the certification tier policy (see [`CertifyMode`]);
/// the returned [`CertifyTally`] records which tier discharged the dual
/// sweep and how long the interval tier ran.
pub(crate) fn verify_bounded(
    lp: &LpProblem<Rat>,
    sf: &StandardForm<Rat>,
    prop: &BoundedBasis,
    deadline: Option<Instant>,
    mode: CertifyMode,
) -> (Certified, CertifyTally) {
    faultinject::hit("slow_certify");
    let mut span = abt_core::obs_span!("solve.certify", mode = format_args!("{mode:?}"));
    let expired = || deadline.is_some_and(|d| Instant::now() >= d);
    let mut tally = CertifyTally::default();
    let certified = match verify_bounded_staged(lp, sf, prop, &expired, mode, &mut tally) {
        Ok(Some(solution)) => Certified::Verified(solution),
        Ok(None) => Certified::Refuted,
        Err(DeadlinePassed) => Certified::Deadline,
    };
    span.field(
        "outcome",
        match &certified {
            Certified::Verified(_) => "verified",
            Certified::Refuted => "refuted",
            Certified::Deadline => "deadline",
        },
    );
    span.field("interval_accepts", tally.interval_accepts);
    (certified, tally)
}

/// Error marker of [`verify_bounded_staged`]: the stage deadline passed.
struct DeadlinePassed;

fn verify_bounded_staged(
    lp: &LpProblem<Rat>,
    sf: &StandardForm<Rat>,
    prop: &BoundedBasis,
    expired: &dyn Fn() -> bool,
    mode: CertifyMode,
    tally: &mut CertifyTally,
) -> Result<Option<LpSolution<Rat>>, DeadlinePassed> {
    if expired() {
        return Err(DeadlinePassed);
    }
    let m = sf.m;
    if prop.basis.len() != m || prop.state.len() != sf.ncols {
        return Ok(None);
    }
    // State consistency: exactly the basis columns are `Basic`, every
    // `AtUpper` column has a finite bound, every `AtVub` column a VUB.
    let mut basic_count = 0usize;
    for j in 0..sf.ncols {
        match prop.state[j] {
            VarState::Basic => basic_count += 1,
            VarState::AtUpper => {
                if sf.upper[j].is_none() {
                    return Ok(None);
                }
            }
            VarState::AtVub => {
                let Some(k) = sf.vub[j] else {
                    return Ok(None);
                };
                // Families are flat: a key never rests glued itself.
                if prop.state[k] == VarState::AtVub {
                    return Ok(None);
                }
            }
            VarState::AtLower => {}
        }
    }
    if basic_count != m {
        return Ok(None);
    }
    let mut seen = vec![false; sf.ncols];
    let mut pos = vec![usize::MAX; sf.ncols];
    for (i, &j) in prop.basis.iter().enumerate() {
        if j >= sf.ncols
            || prop.state[j] != VarState::Basic
            || std::mem::replace(&mut seen[j], true)
        {
            return Ok(None);
        }
        pos[j] = i;
    }
    // The resting value of a nonbasic key (AtLower/AtUpper by the flatness
    // check above).
    let key_rest = |k: usize| -> Rat {
        match prop.state[k] {
            VarState::AtLower => Rat::ZERO,
            VarState::AtUpper => *sf.upper[k].as_ref().expect("checked above"),
            VarState::Basic | VarState::AtVub => unreachable!("not a nonbasic key"),
        }
    };
    // Glued dependents per key (they ride inside the augmented column of a
    // basic key); dependents glued to nonbasic keys contribute fixed
    // values to the right-hand side instead.
    let mut glued: Vec<Vec<usize>> = vec![Vec::new(); sf.ncols];
    for j in 0..sf.ncols {
        if prop.state[j] == VarState::AtVub {
            glued[sf.vub[j].expect("checked above")].push(j);
        }
    }
    let bcols: Vec<Vec<(usize, Rat)>> = prop
        .basis
        .iter()
        .map(|&j| crate::bounds::augmented_column(&sf.cols, j, &glued[j]))
        .collect();
    let Some(lu) = SparseLu::factor(m, &bcols) else {
        return Ok(None);
    };
    if expired() {
        return Err(DeadlinePassed);
    }
    // Exact basic values against the bound-adjusted right-hand side.
    let mut rhs = sf.b.clone();
    for j in 0..sf.ncols {
        let val = match prop.state[j] {
            VarState::AtUpper => *sf.upper[j].as_ref().expect("checked above"),
            VarState::AtVub => {
                let k = sf.vub[j].expect("checked above");
                if pos[k] == usize::MAX {
                    key_rest(k)
                } else {
                    continue; // inside the augmented key column
                }
            }
            VarState::Basic | VarState::AtLower => continue,
        };
        if !val.is_zero_s() {
            for (i, v) in &sf.cols[j] {
                rhs[*i] = rhs[*i].sub(&val.mul(v));
            }
        }
    }
    let xb = lu.solve(&rhs);
    if expired() {
        return Err(DeadlinePassed);
    }
    // The exact value of any column under the proposal.
    let value_of = |j: usize| -> Rat {
        match prop.state[j] {
            VarState::Basic => xb[pos[j]],
            VarState::AtLower => Rat::ZERO,
            VarState::AtUpper => *sf.upper[j].as_ref().expect("checked above"),
            VarState::AtVub => {
                let k = sf.vub[j].expect("checked above");
                if pos[k] == usize::MAX {
                    key_rest(k)
                } else {
                    xb[pos[k]]
                }
            }
        }
    };
    for (i, &j) in prop.basis.iter().enumerate() {
        if xb[i].is_neg() {
            return Ok(None);
        }
        if let Some(u) = &sf.upper[j] {
            if xb[i].sub(u).is_pos() {
                return Ok(None);
            }
        }
        // A basic dependent must sit below its key's exact value.
        if let Some(k) = sf.vub[j] {
            if xb[i].sub(&value_of(k)).is_pos() {
                return Ok(None);
            }
        }
        if sf.artificial[j] && !xb[i].is_zero_s() {
            return Ok(None);
        }
    }
    // Glued values must be nonnegative (a key resting below zero is
    // impossible, but a defensive exact check is cheap).
    for j in 0..sf.ncols {
        if prop.state[j] == VarState::AtVub && value_of(j).is_neg() {
            return Ok(None);
        }
    }
    // Exact duals from the augmented system B̄ᵀ·y = c̄_B.
    let cb: Vec<Rat> = prop
        .basis
        .iter()
        .map(|&j| {
            let mut c = sf.cost[j];
            for &g in &glued[j] {
                c = c.add(&sf.cost[g]);
            }
            c
        })
        .collect();
    let y = lu.solve_transposed(&cb);
    if expired() {
        return Err(DeadlinePassed);
    }
    // Reduced-cost sign conditions per resting state, discharged by the
    // interval tier when the mode allows and every enclosure is one-sided,
    // by the exact rational sweep otherwise. The sweep is the dominant
    // certification cost — O(ncols) rational dot products over a column
    // count dwarfing the basis dimension — while everything above (exact
    // factor, primal and dual solves) is needed for the returned solution
    // anyway, so only the sweep is tiered.
    let dual_ok = match mode {
        CertifyMode::Exact => exact_dual_sweep(sf, prop, &glued, &y),
        CertifyMode::Interval | CertifyMode::IntervalThenExact => {
            let tick = Instant::now();
            let sweep = interval_dual_sweep(sf, prop, &glued, &y, expired);
            tally.interval_nanos += tick.elapsed().as_nanos() as u64;
            match sweep {
                IvSweep::Proven => {
                    tally.interval_accepts = 1;
                    true
                }
                IvSweep::Refuted => false,
                IvSweep::Deadline => return Err(DeadlinePassed),
                IvSweep::Inconclusive => {
                    tally.interval_escalations = 1;
                    // Pure-interval mode has no exact sweep to escalate
                    // to: the proposal is handed back refuted and a lower
                    // rung certifies exactly.
                    mode == CertifyMode::IntervalThenExact && exact_dual_sweep(sf, prop, &glued, &y)
                }
            }
        }
    };
    if !dual_ok {
        return Ok(None);
    }
    // Certified optimal: extract structural values and row duals (promoted
    // bound rows of VUB dependents are internal — drop their duals).
    let n = lp.num_vars();
    let mut x = vec![Rat::ZERO; n];
    for (j, xj) in x.iter_mut().enumerate() {
        *xj = value_of(j);
    }
    let objective = lp.objective_value(&x);
    let mut duals: Vec<Rat> = y
        .iter()
        .zip(&sf.row_flip)
        .map(|(yi, flip)| if *flip { yi.neg() } else { *yi })
        .collect();
    duals.truncate(lp.num_constraints());
    Ok(Some(LpSolution {
        status: LpStatus::Optimal,
        objective,
        x,
        duals,
    }))
}

/// The exact rational reduced-cost sweep over every nonbasic
/// non-artificial column (see the module docs for the per-resting-state
/// certificate). Returns `false` on the first proven sign violation.
fn exact_dual_sweep(
    sf: &StandardForm<Rat>,
    prop: &BoundedBasis,
    glued: &[Vec<usize>],
    y: &[Rat],
) -> bool {
    let reduced = |j: usize| -> Rat {
        let mut d = sf.cost[j];
        for (i, v) in &sf.cols[j] {
            d = d.sub(&y[*i].mul(v));
        }
        d
    };
    // Each glued dependent's reduced cost is needed twice — for its own
    // λ_j = −d_j ≥ 0 check and folded into its key's augmented d̄ — so
    // compute the exact rational dot products once.
    let dep_reduced: Vec<Option<Rat>> = (0..sf.ncols)
        .map(|j| (prop.state[j] == VarState::AtVub).then(|| reduced(j)))
        .collect();
    for j in 0..sf.ncols {
        if prop.state[j] == VarState::Basic || sf.artificial[j] {
            continue;
        }
        match prop.state[j] {
            // The VUB multiplier λ_j = −d_j must be nonnegative.
            VarState::AtVub => {
                if dep_reduced[j].expect("computed above").is_pos() {
                    return false;
                }
            }
            VarState::AtLower | VarState::AtUpper => {
                // Keys answer with the augmented reduced cost — their
                // glued dependents' multipliers fold in.
                let mut dbar = reduced(j);
                for &g in &glued[j] {
                    dbar = dbar.add(&dep_reduced[g].expect("glued implies AtVub"));
                }
                match prop.state[j] {
                    VarState::AtLower if dbar.is_neg() => return false,
                    VarState::AtUpper if dbar.is_pos() => return false,
                    _ => {}
                }
            }
            VarState::Basic => unreachable!(),
        }
    }
    true
}

/// Outcome of [`interval_dual_sweep`].
enum IvSweep {
    /// Every reduced-cost sign condition was proven — dual feasibility is
    /// certified without the exact sweep.
    Proven,
    /// Too many enclosures straddled; a full exact sweep is cheaper than
    /// more column-by-column rescues. **Not** a verdict.
    Inconclusive,
    /// A sign condition is violated (proven by an enclosure or by a
    /// rescued exact value) — the proposal is refuted, same verdict the
    /// exact sweep would reach.
    Refuted,
    /// The deadline passed mid-sweep.
    Deadline,
}

/// The directed-rounding interval tier: re-proves every reduced-cost sign
/// condition with outward-rounded `f64` enclosures (see
/// [`crate::interval`]) of the *exact* duals, escalating per column to an
/// exact rational dot product when an enclosure straddles zero. Sound by
/// construction: an enclosure can only prove a true inequality, and every
/// refutation is either enclosure-proven or exact.
fn interval_dual_sweep(
    sf: &StandardForm<Rat>,
    prop: &BoundedBasis,
    glued: &[Vec<usize>],
    y: &[Rat],
    expired: &dyn Fn() -> bool,
) -> IvSweep {
    // Exact duals enclosed outward once; each reduced cost is then a pure
    // f64 dot product with per-operation outward rounding.
    let ivy: Vec<Iv> = y.iter().map(Iv::from_rat).collect();
    let reduced_iv = |j: usize| -> Iv {
        let mut d = Iv::from_rat(&sf.cost[j]);
        for (i, v) in &sf.cols[j] {
            d = d - ivy[*i] * Iv::from_rat(v);
        }
        d
    };
    let reduced_exact = |j: usize| -> Rat {
        let mut d = sf.cost[j];
        for (i, v) in &sf.cols[j] {
            d = d.sub(&y[*i].mul(v));
        }
        d
    };
    // Straddling columns are rescued one at a time with the exact dot
    // product; past this cap a single full exact sweep is cheaper than
    // more per-column rescues, so the solve escalates wholesale.
    let rescue_cap = 8 + sf.ncols / 8;
    let mut rescued = 0usize;
    // Glued dependents first: their λ_j = −d_j ≥ 0 check, plus the
    // enclosure (or rescued exact value) their key's augmented d̄ folds in.
    let mut dep_iv: Vec<Option<Iv>> = vec![None; sf.ncols];
    let mut dep_exact: Vec<Option<Rat>> = vec![None; sf.ncols];
    for j in 0..sf.ncols {
        if prop.state[j] != VarState::AtVub {
            continue;
        }
        if j % 512 == 0 && expired() {
            return IvSweep::Deadline;
        }
        let d = reduced_iv(j);
        if d.proves_pos() {
            return IvSweep::Refuted; // λ_j = −d_j provably negative
        }
        if d.proves_nonpos() {
            dep_iv[j] = Some(d);
            continue;
        }
        rescued += 1;
        if rescued > rescue_cap {
            return IvSweep::Inconclusive;
        }
        if expired() {
            return IvSweep::Deadline;
        }
        let dx = reduced_exact(j);
        if dx.is_pos() {
            return IvSweep::Refuted;
        }
        dep_iv[j] = Some(Iv::from_rat(&dx));
        dep_exact[j] = Some(dx);
    }
    for j in 0..sf.ncols {
        if prop.state[j] == VarState::Basic || prop.state[j] == VarState::AtVub || sf.artificial[j]
        {
            continue;
        }
        if j % 512 == 0 && expired() {
            return IvSweep::Deadline;
        }
        let mut dbar = reduced_iv(j);
        for &g in &glued[j] {
            dbar = dbar + dep_iv[g].expect("glued implies AtVub");
        }
        let proven = match prop.state[j] {
            VarState::AtLower => {
                if dbar.proves_neg() {
                    return IvSweep::Refuted;
                }
                dbar.proves_nonneg()
            }
            VarState::AtUpper => {
                if dbar.proves_pos() {
                    return IvSweep::Refuted;
                }
                dbar.proves_nonpos()
            }
            VarState::Basic | VarState::AtVub => unreachable!(),
        };
        if proven {
            continue;
        }
        rescued += 1;
        if rescued > rescue_cap {
            return IvSweep::Inconclusive;
        }
        if expired() {
            return IvSweep::Deadline;
        }
        let mut dx = reduced_exact(j);
        for &g in &glued[j] {
            // A dependent proven nonpositive by its enclosure alone never
            // had its exact value computed; a key rescue needs it now.
            let gx = match &dep_exact[g] {
                Some(v) => *v,
                None => reduced_exact(g),
            };
            dx = dx.add(&gx);
        }
        match prop.state[j] {
            VarState::AtLower if dx.is_neg() => return IvSweep::Refuted,
            VarState::AtUpper if dx.is_pos() => return IvSweep::Refuted,
            _ => {}
        }
    }
    IvSweep::Proven
}

/// Bounded-variable revised hybrid solve: runs the bounded revised simplex
/// of [`crate::bounds`] in `f64`, verifies the terminal basis exactly with
/// a sparse rational LU, and falls back to the pure exact simplex (on the
/// bound/VUB-materialized row encoding) when verification fails. Status
/// and objective are always bit-identical to [`solve`]`::<Rat>`.
#[deprecated(note = "use `solve_lp` with the default `LpOptions`")]
pub fn solve_revised(lp: &LpProblem<Rat>) -> LpSolution<Rat> {
    solve_revised_core(lp, &RevisedOptions::default())
        .0
        .solution
}

/// Which certification tier(s) run on the terminal basis of a revised
/// solve. Every mode ends in a *sound* certificate — the tiers differ
/// only in how much of the proof is carried by outward-rounded `f64`
/// intervals (see [`crate::interval`]) versus exact rationals. The
/// returned solution (objective, `x`, duals) is computed in exact
/// rationals under **every** mode, so reported values are bit-identical
/// across modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CertifyMode {
    /// The full exact rational reduced-cost sweep on every solve (the
    /// pre-tier behaviour).
    Exact,
    /// Interval tier only: a solve whose enclosures straddle is handed
    /// back refuted, and the caller (e.g. the supervision ladder) demotes
    /// to a rung that certifies exactly. Sound, but incomplete on
    /// adversarially tight instances.
    Interval,
    /// Interval tier first, escalating to the exact reduced-cost sweep
    /// only when an enclosure straddles — the default.
    #[default]
    IntervalThenExact,
}

/// Per-certification telemetry of one [`verify_bounded`] call: which tier
/// discharged the dual sweep and how long the interval tier ran.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CertifyTally {
    /// 1 iff the interval tier proved dual feasibility (no exact sweep).
    pub(crate) interval_accepts: u64,
    /// 1 iff the interval sweep was inconclusive and the solve escalated.
    pub(crate) interval_escalations: u64,
    /// Wall time inside the interval sweep, nanoseconds.
    pub(crate) interval_nanos: u64,
}

/// Folds a certification's total wall time and tier tally into the solve
/// counters (shared by the cold, warm, and try paths).
pub(crate) fn apply_certify(stats: &mut SolveStats, total_nanos: u64, tally: &CertifyTally) {
    stats.certify_nanos = total_nanos;
    stats.certify_interval_nanos = tally.interval_nanos;
    stats.certify_exact_nanos = total_nanos.saturating_sub(tally.interval_nanos);
    stats.interval_accepts = tally.interval_accepts;
    stats.interval_escalations = tally.interval_escalations;
}

/// Tuning knobs of [`solve_revised_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RevisedOptions {
    /// Partial-pricing window of the float pass (see
    /// [`BoundedOptions::pricing_window`]); `0` = full Dantzig pricing.
    pub pricing: BoundedOptions,
    /// Certification tier policy for the terminal basis. Default:
    /// [`CertifyMode::IntervalThenExact`].
    pub certify: CertifyMode,
}

/// [`solve_revised`] plus whether the exact fallback ran and the solve
/// counters.
#[deprecated(note = "use `solve_lp` with the default `LpOptions`")]
pub fn solve_revised_report(lp: &LpProblem<Rat>) -> HybridReport {
    solve_revised_core(lp, &RevisedOptions::default()).0
}

/// [`solve_revised_report`] with explicit [`RevisedOptions`].
#[deprecated(note = "use `solve_lp` with `LpOptions::pricing`/`certify`")]
pub fn solve_revised_with(lp: &LpProblem<Rat>, opts: &RevisedOptions) -> HybridReport {
    solve_revised_core(lp, opts).0
}

/// The cold revised solve, additionally returning the float pass's
/// verified terminal proposal (for [`crate::warm::BasisSnapshot`]
/// extraction). The proposal is `Some` exactly when the solve completed
/// without the exact fallback.
pub(crate) fn solve_revised_core(
    lp: &LpProblem<Rat>,
    opts: &RevisedOptions,
) -> (HybridReport, Option<BoundedBasis>) {
    solve_revised_core_with_sf(lp, opts, StandardForm::build(&to_f64(lp)))
}

/// [`solve_revised_core`] against a prebuilt `f64` standard form, so a
/// caller that already constructed one (the warm driver) doesn't pay for
/// it twice.
pub(crate) fn solve_revised_core_with_sf(
    lp: &LpProblem<Rat>,
    opts: &RevisedOptions,
    sf64: StandardForm<f64>,
) -> (HybridReport, Option<BoundedBasis>) {
    let prop = solve_bounded_f64_with(&sf64, &opts.pricing);
    let mut stats = SolveStats {
        pivots: prop.pivots,
        bound_flips: prop.bound_flips,
        refactorizations: prop.refactorizations,
        ..SolveStats::default()
    };
    if prop.status == BoundedStatus::Optimal {
        let sfr = StandardForm::build(lp);
        let certify = Instant::now();
        // The legacy (non-`try_`) path certifies without a deadline: its
        // callers have no error channel to surface a budget trip through,
        // and silently treating one as a refutation would demote clean
        // solves to the dense fallback.
        let (verified, tally) = verify_bounded(lp, &sfr, &prop, None, opts.certify);
        apply_certify(&mut stats, certify.elapsed().as_nanos() as u64, &tally);
        if let Certified::Verified(solution) = verified {
            return (
                HybridReport {
                    solution,
                    fallback: false,
                    stats,
                },
                Some(prop),
            );
        }
    }
    (
        HybridReport {
            solution: solve(lp),
            fallback: true,
            stats,
        },
        None,
    )
}

/// The fallible revised solve: like [`solve_revised_with`], but instead of
/// silently falling back to the dense exact simplex on any float-pass
/// failure it returns a typed [`SolveFailure`] and lets the **caller**
/// decide what to run next. This is the rung interface of the supervision
/// ladder in `abt-active`: each failure class maps to a distinct demotion.
///
/// * `Ok(report)` — the float pass finished and the terminal basis was
///   certified exactly optimal (`report.fallback` is always `false` here).
/// * `Err(BudgetExceeded(_))` — a pivot/refactorization/wall-time budget
///   in `opts.pricing` tripped, in the float pass or the certifier. The
///   wall-time budget is **per stage**: the float pass and the certifier
///   each get a fresh clock of the same duration.
/// * `Err(NumericalStall)` — the float pass stalled or claimed unbounded,
///   or its terminal basis was exactly refuted; an exact backend must
///   decide.
/// * `Err(Infeasible)` — the *float* pass claims infeasibility. Tolerance
///   pivoting cannot certify that claim, so callers must confirm with an
///   exact backend before reporting infeasibility outward.
///
/// Unlike the legacy API this function never runs the dense fallback
/// itself, so an `Ok` is always the cheap certified path.
#[deprecated(note = "use `solve_lp` (the fallible core) with `SolverBackend::Revised`")]
pub fn try_solve_revised_with(
    lp: &LpProblem<Rat>,
    opts: &RevisedOptions,
) -> Result<HybridReport, SolveFailure> {
    try_solve_revised_core(lp, opts).map(|(rep, _)| rep)
}

/// [`try_solve_revised_with`] additionally returning the verified terminal
/// proposal for snapshot extraction (always `Some` on `Ok`).
pub(crate) fn try_solve_revised_core(
    lp: &LpProblem<Rat>,
    opts: &RevisedOptions,
) -> Result<(HybridReport, Option<BoundedBasis>), SolveFailure> {
    let sf64 = StandardForm::build(&to_f64(lp));
    let prop = solve_bounded_f64_with(&sf64, &opts.pricing);
    let mut stats = SolveStats {
        pivots: prop.pivots,
        bound_flips: prop.bound_flips,
        refactorizations: prop.refactorizations,
        ..SolveStats::default()
    };
    match prop.status {
        BoundedStatus::Optimal => {}
        BoundedStatus::Budget(k) => return Err(SolveFailure::BudgetExceeded(k)),
        BoundedStatus::Infeasible => return Err(SolveFailure::Infeasible),
        BoundedStatus::Unbounded | BoundedStatus::Stalled => {
            return Err(SolveFailure::NumericalStall)
        }
    }
    let sfr = StandardForm::build(lp);
    let certify = Instant::now();
    let (outcome, tally) =
        verify_bounded(lp, &sfr, &prop, opts.pricing.stage_deadline(), opts.certify);
    apply_certify(&mut stats, certify.elapsed().as_nanos() as u64, &tally);
    match outcome {
        Certified::Verified(solution) => Ok((
            HybridReport {
                solution,
                fallback: false,
                stats,
            },
            Some(prop),
        )),
        Certified::Refuted => Err(SolveFailure::NumericalStall),
        Certified::Deadline => Err(SolveFailure::BudgetExceeded(BudgetKind::Time)),
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the shimmed legacy names stay covered

    use super::*;
    use crate::model::{Cmp, LpProblem};
    use crate::rational::Rat;

    fn r(p: i64, q: i64) -> Rat {
        Rat::new(p as i128, q as i128)
    }

    #[test]
    fn simple_min_le() {
        // min -x - 2y  s.t. x + y <= 4, x <= 2  => x=2, y=2, obj=-6
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(r(-1, 1));
        let y = lp.add_var(r(-2, 1));
        lp.add_constraint(vec![(x, Rat::ONE), (y, Rat::ONE)], Cmp::Le, r(4, 1));
        lp.bound_var(x, r(2, 1));
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, r(-8, 1)); // actually x=0, y=4 gives -8
        assert_eq!(sol.x[1], r(4, 1));
    }

    #[test]
    fn phase1_needed_ge() {
        // min x + y  s.t. x + 2y >= 4, 3x + y >= 6 => intersection (8/5, 6/5), obj 14/5
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(Rat::ONE);
        let y = lp.add_var(Rat::ONE);
        lp.add_constraint(vec![(x, Rat::ONE), (y, r(2, 1))], Cmp::Ge, r(4, 1));
        lp.add_constraint(vec![(x, r(3, 1)), (y, Rat::ONE)], Cmp::Ge, r(6, 1));
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, r(14, 5));
        assert_eq!(sol.x, vec![r(8, 5), r(6, 5)]);
    }

    #[test]
    fn equality_constraints() {
        // min 2x + 3y s.t. x + y = 5, x - y = 1 => x=3, y=2, obj=12
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(r(2, 1));
        let y = lp.add_var(r(3, 1));
        lp.add_constraint(vec![(x, Rat::ONE), (y, Rat::ONE)], Cmp::Eq, r(5, 1));
        lp.add_constraint(vec![(x, Rat::ONE), (y, r(-1, 1))], Cmp::Eq, r(1, 1));
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.x, vec![r(3, 1), r(2, 1)]);
        assert_eq!(sol.objective, r(12, 1));
    }

    #[test]
    fn infeasible_detected() {
        // x >= 3 and x <= 1
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(Rat::ONE);
        lp.add_constraint(vec![(x, Rat::ONE)], Cmp::Ge, r(3, 1));
        lp.bound_var(x, Rat::ONE);
        assert_eq!(solve(&lp).status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x with only x >= 1
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(r(-1, 1));
        lp.add_constraint(vec![(x, Rat::ONE)], Cmp::Ge, Rat::ONE);
        assert_eq!(solve(&lp).status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_rhs_normalization() {
        // min x s.t. -x <= -3  (i.e. x >= 3)
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(Rat::ONE);
        lp.add_constraint(vec![(x, r(-1, 1))], Cmp::Le, r(-3, 1));
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.x[0], r(3, 1));
    }

    #[test]
    fn redundant_equalities_ok() {
        // x + y = 2 listed twice plus min x.
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(Rat::ONE);
        let y = lp.add_var(Rat::ZERO);
        lp.add_constraint(vec![(x, Rat::ONE), (y, Rat::ONE)], Cmp::Eq, r(2, 1));
        lp.add_constraint(vec![(x, Rat::ONE), (y, Rat::ONE)], Cmp::Eq, r(2, 1));
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, Rat::ZERO);
        assert_eq!(sol.x[1], r(2, 1));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate LP (multiple bases at the same vertex).
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(r(-3, 4));
        let y = lp.add_var(r(150, 1));
        let z = lp.add_var(r(-1, 50));
        let w = lp.add_var(r(6, 1));
        lp.add_constraint(
            vec![(x, r(1, 4)), (y, r(-60, 1)), (z, r(-1, 25)), (w, r(9, 1))],
            Cmp::Le,
            Rat::ZERO,
        );
        lp.add_constraint(
            vec![(x, r(1, 2)), (y, r(-90, 1)), (z, r(-1, 50)), (w, r(3, 1))],
            Cmp::Le,
            Rat::ZERO,
        );
        lp.add_constraint(vec![(z, Rat::ONE)], Cmp::Le, Rat::ONE);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, r(-1, 20)); // Beale's example optimum −1/20
    }

    #[test]
    fn f64_backend_agrees() {
        let mut lp: LpProblem<f64> = LpProblem::new();
        let x = lp.add_var(1.0);
        let y = lp.add_var(1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 2.0)], Cmp::Ge, 4.0);
        lp.add_constraint(vec![(x, 3.0), (y, 1.0)], Cmp::Ge, 6.0);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 14.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_constraint_problem() {
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let _ = lp.add_var(Rat::ONE);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, Rat::ZERO);
    }

    // ---- hybrid-specific coverage -------------------------------------

    /// Runs both paths on `lp` and checks the hybrid contract.
    fn assert_hybrid_matches(lp: &LpProblem<Rat>) -> HybridReport {
        let exact = solve(lp);
        let rep = solve_hybrid_report(lp);
        assert_eq!(rep.solution.status, exact.status);
        if exact.status == LpStatus::Optimal {
            assert_eq!(rep.solution.objective, exact.objective);
            assert!(lp.is_feasible(&rep.solution.x));
            assert_eq!(lp.objective_value(&rep.solution.x), exact.objective);
        }
        rep
    }

    #[test]
    fn hybrid_matches_exact_on_basics() {
        // Re-run the fixed instances above through the hybrid path.
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(Rat::ONE);
        let y = lp.add_var(Rat::ONE);
        lp.add_constraint(vec![(x, Rat::ONE), (y, r(2, 1))], Cmp::Ge, r(4, 1));
        lp.add_constraint(vec![(x, r(3, 1)), (y, Rat::ONE)], Cmp::Ge, r(6, 1));
        let rep = assert_hybrid_matches(&lp);
        assert!(!rep.fallback, "clean LP must verify without fallback");

        let mut eq: LpProblem<Rat> = LpProblem::new();
        let x = eq.add_var(r(2, 1));
        let y = eq.add_var(r(3, 1));
        eq.add_constraint(vec![(x, Rat::ONE), (y, Rat::ONE)], Cmp::Eq, r(5, 1));
        eq.add_constraint(vec![(x, Rat::ONE), (y, r(-1, 1))], Cmp::Eq, r(1, 1));
        assert_hybrid_matches(&eq);
    }

    #[test]
    fn hybrid_matches_exact_on_degenerate_and_redundant() {
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(r(-3, 4));
        let y = lp.add_var(r(150, 1));
        let z = lp.add_var(r(-1, 50));
        let w = lp.add_var(r(6, 1));
        lp.add_constraint(
            vec![(x, r(1, 4)), (y, r(-60, 1)), (z, r(-1, 25)), (w, r(9, 1))],
            Cmp::Le,
            Rat::ZERO,
        );
        lp.add_constraint(
            vec![(x, r(1, 2)), (y, r(-90, 1)), (z, r(-1, 50)), (w, r(3, 1))],
            Cmp::Le,
            Rat::ZERO,
        );
        lp.add_constraint(vec![(z, Rat::ONE)], Cmp::Le, Rat::ONE);
        assert_hybrid_matches(&lp);

        let mut red: LpProblem<Rat> = LpProblem::new();
        let x = red.add_var(Rat::ONE);
        let y = red.add_var(Rat::ZERO);
        red.add_constraint(vec![(x, Rat::ONE), (y, Rat::ONE)], Cmp::Eq, r(2, 1));
        red.add_constraint(vec![(x, Rat::ONE), (y, Rat::ONE)], Cmp::Eq, r(2, 1));
        assert_hybrid_matches(&red);
    }

    #[test]
    fn hybrid_reports_infeasible_and_unbounded_exactly() {
        let mut inf: LpProblem<Rat> = LpProblem::new();
        let x = inf.add_var(Rat::ONE);
        inf.add_constraint(vec![(x, Rat::ONE)], Cmp::Ge, r(3, 1));
        inf.bound_var(x, Rat::ONE);
        let rep = assert_hybrid_matches(&inf);
        assert!(rep.fallback, "non-Optimal float status must re-run exactly");

        let mut unb: LpProblem<Rat> = LpProblem::new();
        let x = unb.add_var(r(-1, 1));
        unb.add_constraint(vec![(x, Rat::ONE)], Cmp::Ge, Rat::ONE);
        assert_hybrid_matches(&unb);
    }

    #[test]
    fn hybrid_falls_back_on_sub_epsilon_cost_gap() {
        // min (1 + 2⁻⁶⁰)·x₀ + x₁  s.t.  x₀ + x₁ ≥ 1. In f64 both costs
        // round to 1.0, the float pass lands on the basis {x₀} (Dantzig
        // tie-break enters the first column) and declares it optimal; the
        // exact reduced cost of x₁ there is −2⁻⁶⁰ < 0, so verification
        // must reject the basis and the fallback must find x₁ = 1.
        let eps = Rat::new(1, 1i128 << 60);
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x0 = lp.add_var(Rat::ONE.add(&eps));
        let x1 = lp.add_var(Rat::ONE);
        lp.add_constraint(vec![(x0, Rat::ONE), (x1, Rat::ONE)], Cmp::Ge, Rat::ONE);
        let rep = solve_hybrid_report(&lp);
        assert!(
            rep.fallback,
            "sub-epsilon cost gap must force the exact fallback"
        );
        assert_eq!(rep.solution.status, LpStatus::Optimal);
        assert_eq!(rep.solution.objective, Rat::ONE);
        assert_eq!(rep.solution.x, vec![Rat::ZERO, Rat::ONE]);
        assert_eq!(solve(&lp).objective, Rat::ONE);
    }

    // ---- bounded revised hybrid coverage ------------------------------

    /// Runs the dense exact path and the revised path on `lp` and checks
    /// the shared contract.
    fn assert_revised_matches(lp: &LpProblem<Rat>) -> HybridReport {
        let exact = solve(lp);
        let rep = solve_revised_report(lp);
        assert_eq!(rep.solution.status, exact.status);
        if exact.status == LpStatus::Optimal {
            assert_eq!(rep.solution.objective, exact.objective);
            assert!(lp.is_feasible(&rep.solution.x));
            assert_eq!(lp.objective_value(&rep.solution.x), exact.objective);
        }
        rep
    }

    #[test]
    fn revised_matches_exact_on_fixed_instances() {
        // The phase-1 instance.
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(Rat::ONE);
        let y = lp.add_var(Rat::ONE);
        lp.add_constraint(vec![(x, Rat::ONE), (y, r(2, 1))], Cmp::Ge, r(4, 1));
        lp.add_constraint(vec![(x, r(3, 1)), (y, Rat::ONE)], Cmp::Ge, r(6, 1));
        let rep = assert_revised_matches(&lp);
        assert!(!rep.fallback, "clean LP must verify without fallback");
        assert_eq!(rep.solution.objective, r(14, 5));

        // Equalities.
        let mut eq: LpProblem<Rat> = LpProblem::new();
        let x = eq.add_var(r(2, 1));
        let y = eq.add_var(r(3, 1));
        eq.add_constraint(vec![(x, Rat::ONE), (y, Rat::ONE)], Cmp::Eq, r(5, 1));
        eq.add_constraint(vec![(x, Rat::ONE), (y, r(-1, 1))], Cmp::Eq, r(1, 1));
        assert_revised_matches(&eq);

        // Degenerate (Beale) + duplicated equality rows.
        let mut beale: LpProblem<Rat> = LpProblem::new();
        let x = beale.add_var(r(-3, 4));
        let y = beale.add_var(r(150, 1));
        let z = beale.add_var(r(-1, 50));
        let w = beale.add_var(r(6, 1));
        beale.add_constraint(
            vec![(x, r(1, 4)), (y, r(-60, 1)), (z, r(-1, 25)), (w, r(9, 1))],
            Cmp::Le,
            Rat::ZERO,
        );
        beale.add_constraint(
            vec![(x, r(1, 2)), (y, r(-90, 1)), (z, r(-1, 50)), (w, r(3, 1))],
            Cmp::Le,
            Rat::ZERO,
        );
        beale.add_constraint(vec![(z, Rat::ONE)], Cmp::Le, Rat::ONE);
        let rep = assert_revised_matches(&beale);
        assert_eq!(rep.solution.objective, r(-1, 20));

        let mut red: LpProblem<Rat> = LpProblem::new();
        let x = red.add_var(Rat::ONE);
        let y = red.add_var(Rat::ZERO);
        red.add_constraint(vec![(x, Rat::ONE), (y, Rat::ONE)], Cmp::Eq, r(2, 1));
        red.add_constraint(vec![(x, Rat::ONE), (y, Rat::ONE)], Cmp::Eq, r(2, 1));
        assert_revised_matches(&red);
    }

    #[test]
    fn revised_handles_implicit_bounds_and_row_bounds_identically() {
        // min −x − 2y  s.t.  x + y ≤ 4, x ≤ 2 — once as a row, once as an
        // implicit bound; all backends, same optimum −8 (x=0, y=4).
        let build = |implicit: bool| {
            let mut lp: LpProblem<Rat> = LpProblem::new();
            let x = lp.add_var(r(-1, 1));
            let y = lp.add_var(r(-2, 1));
            lp.add_constraint(vec![(x, Rat::ONE), (y, Rat::ONE)], Cmp::Le, r(4, 1));
            if implicit {
                lp.set_upper(x, r(2, 1));
            } else {
                lp.bound_var(x, r(2, 1));
            }
            lp
        };
        for implicit in [false, true] {
            let lp = build(implicit);
            let dense = solve(&lp);
            let hybrid = solve_hybrid(&lp);
            let rep = solve_revised_report(&lp);
            for sol in [&dense, &hybrid, &rep.solution] {
                assert_eq!(sol.status, LpStatus::Optimal);
                assert_eq!(sol.objective, r(-8, 1), "implicit={implicit}");
                assert_eq!(sol.duals.len(), lp.num_constraints());
            }
            assert!(!rep.fallback);
        }
    }

    #[test]
    fn revised_bound_flip_only_iteration_terminates() {
        // min −x  s.t.  x + y ≤ 10, x ≤ 5 implicit. The only simplex step
        // is a bound flip (no basis change); the solve must terminate and
        // verify without fallback.
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(r(-1, 1));
        let _y = lp.add_var(Rat::ZERO);
        lp.add_constraint(vec![(x, Rat::ONE), (_y, Rat::ONE)], Cmp::Le, r(10, 1));
        lp.set_upper(x, r(5, 1));
        let rep = solve_revised_report(&lp);
        assert!(!rep.fallback, "bound-flip optimum must verify exactly");
        assert_eq!(rep.solution.status, LpStatus::Optimal);
        assert_eq!(rep.solution.objective, r(-5, 1));
        assert_eq!(rep.solution.x[0], r(5, 1));
    }

    #[test]
    fn revised_binding_bound_has_nonzero_bound_multiplier() {
        // min −x − y  s.t.  x + y ≤ 4 with x ≤ 1 implicit: x sticks at its
        // bound. With implicit bounds strong duality needs the bound term:
        // b·y = −4 but c·x = −4 as well here (both constraints tight and
        // the bound's reduced cost is 0)… pick costs making them differ.
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(r(-3, 1)); // strictly prefers x
        let y = lp.add_var(r(-1, 1));
        lp.add_constraint(vec![(x, Rat::ONE), (y, Rat::ONE)], Cmp::Le, r(4, 1));
        lp.set_upper(x, Rat::ONE);
        let rep = solve_revised_report(&lp);
        assert!(!rep.fallback);
        let sol = &rep.solution;
        assert_eq!(sol.objective, r(-6, 1)); // x=1, y=3
        assert_eq!(sol.x, vec![Rat::ONE, r(3, 1)]);
        // Row dual y₁ = −1; the gap −6 − (−4) = −2 is carried by the bound
        // multiplier d_x = c_x − y₁ = −3 + 1 = −2 ≤ 0 at the upper bound.
        assert_eq!(sol.duals, vec![r(-1, 1)]);
    }

    #[test]
    fn revised_reports_infeasible_and_unbounded_exactly() {
        let mut inf: LpProblem<Rat> = LpProblem::new();
        let x = inf.add_var(Rat::ONE);
        inf.add_constraint(vec![(x, Rat::ONE)], Cmp::Ge, r(3, 1));
        inf.set_upper(x, Rat::ONE);
        let rep = assert_revised_matches(&inf);
        assert!(rep.fallback, "non-Optimal float status must re-run exactly");
        assert_eq!(rep.solution.status, LpStatus::Infeasible);

        let mut unb: LpProblem<Rat> = LpProblem::new();
        let x = unb.add_var(r(-1, 1));
        unb.add_constraint(vec![(x, Rat::ONE)], Cmp::Ge, Rat::ONE);
        let rep = assert_revised_matches(&unb);
        assert_eq!(rep.solution.status, LpStatus::Unbounded);
    }

    #[test]
    fn revised_falls_back_on_sub_epsilon_cost_gap() {
        // Same adversarial instance as the dense hybrid: costs that
        // collide in f64 must be caught by the exact verification.
        let eps = Rat::new(1, 1i128 << 60);
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x0 = lp.add_var(Rat::ONE.add(&eps));
        let x1 = lp.add_var(Rat::ONE);
        lp.add_constraint(vec![(x0, Rat::ONE), (x1, Rat::ONE)], Cmp::Ge, Rat::ONE);
        let rep = solve_revised_report(&lp);
        assert!(
            rep.fallback,
            "sub-epsilon cost gap must force the exact fallback"
        );
        assert_eq!(rep.solution.objective, Rat::ONE);
        assert_eq!(rep.solution.x, vec![Rat::ZERO, Rat::ONE]);
    }

    // ---- VUB coverage -------------------------------------------------

    /// Runs the dense exact oracle (rows) against the revised solver on
    /// both encodings of the same VUB structure.
    fn assert_vub_matches(vub_lp: &LpProblem<Rat>) -> HybridReport {
        let oracle = solve(&vub_lp.vubs_as_rows());
        let rep = solve_revised_report(vub_lp);
        assert_eq!(rep.solution.status, oracle.status);
        if oracle.status == LpStatus::Optimal {
            assert_eq!(rep.solution.objective, oracle.objective);
            assert!(vub_lp.is_feasible(&rep.solution.x));
            assert_eq!(vub_lp.objective_value(&rep.solution.x), oracle.objective);
            assert_eq!(rep.solution.duals.len(), vub_lp.num_constraints());
        }
        rep
    }

    #[test]
    fn vub_family_of_size_one() {
        // min −x  s.t.  x + y ≥ 1, x ≤ y (single-dependent family), y ≤ 3.
        // Optimum x = y = 3.
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(r(-1, 1));
        let y = lp.add_var(Rat::ZERO);
        lp.add_constraint(vec![(x, Rat::ONE), (y, Rat::ONE)], Cmp::Ge, Rat::ONE);
        lp.set_upper(y, r(3, 1));
        lp.set_vub(x, y);
        let rep = assert_vub_matches(&lp);
        assert!(!rep.fallback, "clean VUB LP must verify without fallback");
        assert_eq!(rep.solution.objective, r(-3, 1));
        assert_eq!(rep.solution.x[x], r(3, 1));
    }

    #[test]
    fn vub_key_fixed_at_zero() {
        // The key's constant bound is 0, pinning the whole family to 0:
        // min x0 + x1  s.t.  x0 + x1 + z ≥ 2, x_i ≤ y, y ≤ 0. All demand
        // must flow through the free variable z.
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x0 = lp.add_var(Rat::ONE);
        let x1 = lp.add_var(Rat::ONE);
        let y = lp.add_var(r(5, 1)); // expensive key, pinned anyway
        let z = lp.add_var(r(2, 1));
        lp.add_constraint(
            vec![(x0, Rat::ONE), (x1, Rat::ONE), (z, Rat::ONE)],
            Cmp::Ge,
            r(2, 1),
        );
        lp.set_upper(y, Rat::ZERO);
        lp.set_vub(x0, y);
        lp.set_vub(x1, y);
        let rep = assert_vub_matches(&lp);
        assert_eq!(rep.solution.objective, r(4, 1));
        assert_eq!(rep.solution.x[x0], Rat::ZERO);
        assert_eq!(rep.solution.x[x1], Rat::ZERO);
        assert_eq!(rep.solution.x[z], r(2, 1));
    }

    #[test]
    fn vub_dependent_at_constant_cap_and_vub_simultaneously() {
        // x carries both a constant cap and a VUB and the optimum makes
        // both tight: min −3x − y  s.t.  x + y ≤ 4, x ≤ 2 (constant),
        // x ≤ y (VUB) ⇒ x = y = 2, objective −8. The standard form
        // promotes the constant cap to a row (see bounds.rs docs).
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(r(-3, 1));
        let y = lp.add_var(r(-1, 1));
        lp.add_constraint(vec![(x, Rat::ONE), (y, Rat::ONE)], Cmp::Le, r(4, 1));
        lp.set_upper(x, r(2, 1));
        lp.set_vub(x, y);
        let rep = assert_vub_matches(&lp);
        assert_eq!(rep.solution.objective, r(-8, 1));
        assert_eq!(rep.solution.x, vec![r(2, 1), r(2, 1)]);
    }

    #[test]
    fn vub_lp1_shaped_family_verifies_without_fallback() {
        // A miniature LP1: two super-slots Y_I ≤ w_I, three jobs with
        // x_{I,j} ≤ Y_I caps as VUBs, capacity Σ_j x ≤ g·Y, demand rows.
        let g = r(2, 1);
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let y0 = lp.add_var(Rat::ONE);
        let y1 = lp.add_var(Rat::ONE);
        lp.set_upper(y0, r(3, 1));
        lp.set_upper(y1, r(2, 1));
        // job 0 in both runs, job 1 in run 0, job 2 in run 1.
        let x00 = lp.add_var(Rat::ZERO);
        let x10 = lp.add_var(Rat::ZERO);
        let x01 = lp.add_var(Rat::ZERO);
        let x21 = lp.add_var(Rat::ZERO);
        for (x, y) in [(x00, y0), (x10, y0), (x01, y1), (x21, y1)] {
            lp.set_vub(x, y);
        }
        lp.add_constraint(
            vec![(x00, Rat::ONE), (x10, Rat::ONE), (y0, g.neg())],
            Cmp::Le,
            Rat::ZERO,
        );
        lp.add_constraint(
            vec![(x01, Rat::ONE), (x21, Rat::ONE), (y1, g.neg())],
            Cmp::Le,
            Rat::ZERO,
        );
        lp.add_constraint(vec![(x00, Rat::ONE), (x01, Rat::ONE)], Cmp::Ge, r(3, 1));
        lp.add_constraint(vec![(x10, Rat::ONE)], Cmp::Ge, r(2, 1));
        lp.add_constraint(vec![(x21, Rat::ONE)], Cmp::Ge, Rat::ONE);
        let rep = assert_vub_matches(&lp);
        assert!(!rep.fallback, "LP1-shaped VUB model must verify exactly");
        // Work 6 over capacity g = 2 needs ≥ 3 open mass.
        assert_eq!(rep.solution.objective, r(3, 1));
        assert!(rep.stats.pivots + rep.stats.bound_flips > 0);
    }

    #[test]
    fn vub_infeasible_and_unbounded_detected() {
        // Infeasible: demand 5 but the whole family is capped by y ≤ 1
        // and capacity 2y.
        let mut inf: LpProblem<Rat> = LpProblem::new();
        let y = inf.add_var(Rat::ONE);
        let x = inf.add_var(Rat::ZERO);
        inf.set_upper(y, Rat::ONE);
        inf.set_vub(x, y);
        inf.add_constraint(vec![(x, Rat::ONE)], Cmp::Ge, r(5, 1));
        let rep = assert_vub_matches(&inf);
        assert_eq!(rep.solution.status, LpStatus::Infeasible);

        // Unbounded: the key has no constant bound and pays off.
        let mut unb: LpProblem<Rat> = LpProblem::new();
        let y = unb.add_var(r(-1, 1));
        let x = unb.add_var(Rat::ZERO);
        unb.set_vub(x, y);
        unb.add_constraint(vec![(x, Rat::ONE), (y, Rat::ONE)], Cmp::Ge, Rat::ONE);
        let rep = assert_vub_matches(&unb);
        assert_eq!(rep.solution.status, LpStatus::Unbounded);
    }

    // ---- fallible (try_) revised coverage -----------------------------

    #[test]
    fn try_solve_certifies_clean_instances() {
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(Rat::ONE);
        let y = lp.add_var(Rat::ONE);
        lp.add_constraint(vec![(x, Rat::ONE), (y, r(2, 1))], Cmp::Ge, r(4, 1));
        lp.add_constraint(vec![(x, r(3, 1)), (y, Rat::ONE)], Cmp::Ge, r(6, 1));
        let rep = try_solve_revised_with(&lp, &RevisedOptions::default()).expect("clean LP");
        assert!(!rep.fallback);
        assert_eq!(rep.solution.objective, r(14, 5));
        assert_eq!(rep.solution.objective, solve(&lp).objective);
    }

    #[test]
    fn try_solve_surfaces_budget_trips() {
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(Rat::ONE);
        let y = lp.add_var(Rat::ONE);
        lp.add_constraint(vec![(x, Rat::ONE), (y, r(2, 1))], Cmp::Ge, r(4, 1));
        lp.add_constraint(vec![(x, r(3, 1)), (y, Rat::ONE)], Cmp::Ge, r(6, 1));
        let opts = RevisedOptions {
            pricing: BoundedOptions {
                pivot_budget: 1,
                ..BoundedOptions::default()
            },
            ..RevisedOptions::default()
        };
        assert_eq!(
            try_solve_revised_with(&lp, &opts).unwrap_err(),
            SolveFailure::BudgetExceeded(BudgetKind::Pivots)
        );
    }

    #[test]
    fn try_solve_maps_float_verdicts_to_typed_failures() {
        // Float infeasibility is a *claim*, not a certificate: the typed
        // error tells the supervisor to confirm with an exact rung.
        let mut inf: LpProblem<Rat> = LpProblem::new();
        let x = inf.add_var(Rat::ONE);
        inf.add_constraint(vec![(x, Rat::ONE)], Cmp::Ge, r(3, 1));
        inf.set_upper(x, Rat::ONE);
        assert_eq!(
            try_solve_revised_with(&inf, &RevisedOptions::default()).unwrap_err(),
            SolveFailure::Infeasible
        );

        // Unbounded claims demote to an exact backend as a stall.
        let mut unb: LpProblem<Rat> = LpProblem::new();
        let x = unb.add_var(r(-1, 1));
        unb.add_constraint(vec![(x, Rat::ONE)], Cmp::Ge, Rat::ONE);
        assert_eq!(
            try_solve_revised_with(&unb, &RevisedOptions::default()).unwrap_err(),
            SolveFailure::NumericalStall
        );

        // An exactly-refuted terminal basis (the sub-epsilon cost gap) is
        // a numerical stall, not a silent dense fallback.
        let eps = Rat::new(1, 1i128 << 60);
        let mut gap: LpProblem<Rat> = LpProblem::new();
        let x0 = gap.add_var(Rat::ONE.add(&eps));
        let x1 = gap.add_var(Rat::ONE);
        gap.add_constraint(vec![(x0, Rat::ONE), (x1, Rat::ONE)], Cmp::Ge, Rat::ONE);
        assert_eq!(
            try_solve_revised_with(&gap, &RevisedOptions::default()).unwrap_err(),
            SolveFailure::NumericalStall
        );
    }

    #[test]
    fn hybrid_duals_satisfy_strong_duality() {
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(Rat::ONE);
        let y = lp.add_var(r(2, 1));
        lp.add_constraint(vec![(x, Rat::ONE), (y, Rat::ONE)], Cmp::Ge, r(3, 1));
        lp.bound_var(x, r(2, 1));
        let sol = solve_hybrid(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        let mut by = Rat::ZERO;
        for (c, yv) in lp.constraints().iter().zip(&sol.duals) {
            by = by.add(&yv.mul(&c.rhs));
        }
        assert_eq!(by, sol.objective, "strong duality b·y = c·x");
    }
}

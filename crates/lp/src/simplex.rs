//! A dense two-phase primal simplex solver.
//!
//! Design points:
//! * **Generic scalar**: runs on exact rationals (default for the paper's
//!   LPs) or `f64`.
//! * **Anti-cycling**: Dantzig's rule for speed, with an automatic permanent
//!   switch to Bland's rule after a run of degenerate pivots, which
//!   guarantees termination.
//! * **Two phases**: artificials for `≥`/`=` rows; redundant rows left
//!   harmlessly basic at zero after phase 1 with their artificial columns
//!   barred from re-entering.

#![allow(clippy::needless_range_loop)] // index loops mirror the tableau math

use crate::model::{Cmp, LpProblem};
use crate::scalar::Scalar;

/// Outcome of a solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

/// An LP solution.
#[derive(Debug, Clone)]
pub struct LpSolution<S> {
    /// Solve outcome.
    pub status: LpStatus,
    /// Optimal objective value (meaningful only when `Optimal`).
    pub objective: S,
    /// Values of the original variables (meaningful only when `Optimal`).
    pub x: Vec<S>,
    /// Dual values, one per constraint, in the sign convention of
    /// `min c·x` duality: `y_i ≤ 0` for `≤` rows, `y_i ≥ 0` for `≥` rows,
    /// free for `=` rows; at optimality `b·y = c·x` (strong duality) and
    /// `Σ_i y_i a_ij ≤ c_j` for every variable (dual feasibility). Empty
    /// unless `Optimal`.
    pub duals: Vec<S>,
}

/// Number of consecutive degenerate pivots tolerated before switching to
/// Bland's rule.
const DEGENERATE_SWITCH: usize = 64;

/// Hard iteration cap (simplex with Bland's rule terminates; this is a
/// safety net against implementation bugs, not a tuning knob).
fn iteration_cap(rows: usize, cols: usize) -> usize {
    10_000 + 64 * (rows + cols)
}

struct Tableau<S> {
    /// `rows × (cols + 1)`; last column is the RHS.
    a: Vec<Vec<S>>,
    /// Reduced-cost row, length `cols + 1`; last entry is −(objective value).
    cost: Vec<S>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Columns barred from entering (artificials in phase 2).
    barred: Vec<bool>,
    cols: usize,
}

impl<S: Scalar> Tableau<S> {
    fn pivot(&mut self, row: usize, col: usize) {
        let piv = self.a[row][col].clone();
        debug_assert!(!piv.is_zero_s());
        for j in 0..=self.cols {
            self.a[row][j] = self.a[row][j].div(&piv);
        }
        for i in 0..self.a.len() {
            if i == row {
                continue;
            }
            let factor = self.a[i][col].clone();
            if factor.is_zero_s() {
                continue;
            }
            for j in 0..=self.cols {
                self.a[i][j] = self.a[i][j].sub(&factor.mul(&self.a[row][j]));
            }
        }
        let factor = self.cost[col].clone();
        if !factor.is_zero_s() {
            for j in 0..=self.cols {
                self.cost[j] = self.cost[j].sub(&factor.mul(&self.a[row][j]));
            }
        }
        self.basis[row] = col;
    }

    /// Runs the simplex loop on the current cost row. Returns `false` if
    /// unbounded.
    fn optimize(&mut self) -> bool {
        let mut bland = false;
        let mut degenerate_run = 0usize;
        let cap = iteration_cap(self.a.len(), self.cols);
        for _ in 0..cap {
            // Entering column: negative reduced cost.
            let mut enter: Option<usize> = None;
            if bland {
                for j in 0..self.cols {
                    if !self.barred[j] && self.cost[j].is_neg() {
                        enter = Some(j);
                        break;
                    }
                }
            } else {
                let mut best: Option<(usize, S)> = None;
                for j in 0..self.cols {
                    if self.barred[j] || !self.cost[j].is_neg() {
                        continue;
                    }
                    match &best {
                        Some((_, b)) if self.cost[j].cmp_s(b) != std::cmp::Ordering::Less => {}
                        _ => best = Some((j, self.cost[j].clone())),
                    }
                }
                enter = best.map(|(j, _)| j);
            }
            let Some(col) = enter else { return true };
            // Leaving row: minimum ratio, Bland tie-break on basis index.
            let mut leave: Option<(usize, S)> = None;
            for i in 0..self.a.len() {
                if !self.a[i][col].is_pos() {
                    continue;
                }
                let ratio = self.a[i][self.cols].div(&self.a[i][col]);
                let better = match &leave {
                    None => true,
                    Some((li, lr)) => match ratio.cmp_s(lr) {
                        std::cmp::Ordering::Less => true,
                        std::cmp::Ordering::Equal => self.basis[i] < self.basis[*li],
                        std::cmp::Ordering::Greater => false,
                    },
                };
                if better {
                    leave = Some((i, ratio));
                }
            }
            let Some((row, ratio)) = leave else { return false };
            if ratio.is_zero_s() {
                degenerate_run += 1;
                if degenerate_run >= DEGENERATE_SWITCH {
                    bland = true;
                }
            } else {
                degenerate_run = 0;
            }
            self.pivot(row, col);
        }
        panic!("abt-lp: simplex iteration cap exceeded — please report this instance");
    }
}

/// Solves `lp` to optimality (or detects infeasibility/unboundedness).
pub fn solve<S: Scalar>(lp: &LpProblem<S>) -> LpSolution<S> {
    let n = lp.num_vars();
    let m = lp.num_constraints();

    // Count structural columns.
    let mut n_slack = 0;
    let mut n_art = 0;
    for c in lp.constraints() {
        // After RHS normalization the sense may flip; count accordingly.
        let rhs_neg = c.rhs.is_neg();
        let sense = match (c.cmp, rhs_neg) {
            (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
            (Cmp::Ge, false) | (Cmp::Le, true) => Cmp::Ge,
            (Cmp::Eq, _) => Cmp::Eq,
        };
        match sense {
            Cmp::Le => n_slack += 1,
            Cmp::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Cmp::Eq => n_art += 1,
        }
    }
    let cols = n + n_slack + n_art;
    let mut a: Vec<Vec<S>> = vec![vec![S::zero(); cols + 1]; m];
    let mut basis = vec![0usize; m];
    let mut is_artificial = vec![false; cols];
    // Per original row: (auxiliary column, its sign in the dual read-out,
    // whether the row was flipped to normalize the RHS).
    let mut row_aux: Vec<(usize, bool, bool)> = Vec::with_capacity(m);

    let mut slack_at = n;
    let mut art_at = n + n_slack;
    for (i, c) in lp.constraints().iter().enumerate() {
        let flip = c.rhs.is_neg();
        let sgn = if flip { S::one().neg() } else { S::one() };
        for (v, coef) in &c.terms {
            a[i][*v] = a[i][*v].add(&sgn.mul(coef));
        }
        a[i][cols] = sgn.mul(&c.rhs);
        let sense = match (c.cmp, flip) {
            (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
            (Cmp::Ge, false) | (Cmp::Le, true) => Cmp::Ge,
            (Cmp::Eq, _) => Cmp::Eq,
        };
        match sense {
            Cmp::Le => {
                a[i][slack_at] = S::one();
                basis[i] = slack_at;
                // slack column: y_i = −r_slack
                row_aux.push((slack_at, true, flip));
                slack_at += 1;
            }
            Cmp::Ge => {
                a[i][slack_at] = S::one().neg();
                // surplus column: y_i = +r_surplus
                row_aux.push((slack_at, false, flip));
                slack_at += 1;
                a[i][art_at] = S::one();
                is_artificial[art_at] = true;
                basis[i] = art_at;
                art_at += 1;
            }
            Cmp::Eq => {
                a[i][art_at] = S::one();
                is_artificial[art_at] = true;
                basis[i] = art_at;
                // artificial column: y_i = −r_artificial
                row_aux.push((art_at, true, flip));
                art_at += 1;
            }
        }
    }

    let mut t = Tableau {
        a,
        cost: vec![S::zero(); cols + 1],
        basis,
        barred: vec![false; cols],
        cols,
    };

    // Phase 1: minimize the sum of artificials. Reduced costs: for column j,
    // r_j = c1_j − Σ_{rows with artificial basis} a_ij, where c1 is 1 on
    // artificials. Artificial basis columns start with r = 0.
    if n_art > 0 {
        for j in 0..=cols {
            let mut r = if j < cols && is_artificial[j] { S::one() } else { S::zero() };
            for i in 0..m {
                if is_artificial[t.basis[i]] {
                    r = r.sub(&t.a[i][j]);
                }
            }
            t.cost[j] = r;
        }
        let bounded = t.optimize();
        debug_assert!(bounded, "phase 1 cannot be unbounded");
        // Objective value is −cost[cols].
        if t.cost[cols].neg().is_pos() {
            return LpSolution {
                status: LpStatus::Infeasible,
                objective: S::zero(),
                x: vec![],
                duals: vec![],
            };
        }
        // Drive artificials out of the basis where possible.
        for i in 0..m {
            if is_artificial[t.basis[i]] {
                if let Some(j) = (0..cols).find(|&j| !is_artificial[j] && !t.a[i][j].is_zero_s()) {
                    t.pivot(i, j);
                }
                // Otherwise the row is redundant; its artificial stays basic
                // at value 0, and barring artificial columns keeps it there.
            }
        }
        for j in 0..cols {
            if is_artificial[j] {
                t.barred[j] = true;
            }
        }
    }

    // Phase 2: real objective. r_j = c_j − Σ_i c_{basis(i)} a_ij.
    let real_cost = |j: usize| -> S {
        if j < n {
            lp.objective()[j].clone()
        } else {
            S::zero()
        }
    };
    for j in 0..=cols {
        let mut r = if j < cols { real_cost(j) } else { S::zero() };
        for i in 0..m {
            let cb = real_cost(t.basis[i]);
            if !cb.is_zero_s() {
                r = r.sub(&cb.mul(&t.a[i][j]));
            }
        }
        t.cost[j] = r;
    }
    if !t.optimize() {
        return LpSolution {
            status: LpStatus::Unbounded,
            objective: S::zero(),
            x: vec![],
            duals: vec![],
        };
    }

    let mut x = vec![S::zero(); n];
    for i in 0..m {
        if t.basis[i] < n {
            x[t.basis[i]] = t.a[i][cols].clone();
        }
    }
    // Duals from the reduced costs of each row's auxiliary column (the
    // classic y = c_B B⁻¹ read-out), undoing RHS-normalization flips.
    let duals = row_aux
        .iter()
        .map(|&(col, negate, flip)| {
            let mut y = if negate { t.cost[col].neg() } else { t.cost[col].clone() };
            if flip {
                y = y.neg();
            }
            y
        })
        .collect();
    let objective = lp.objective_value(&x);
    LpSolution { status: LpStatus::Optimal, objective, x, duals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, LpProblem};
    use crate::rational::Rat;

    fn r(p: i64, q: i64) -> Rat {
        Rat::new(p as i128, q as i128)
    }

    #[test]
    fn simple_min_le() {
        // min -x - 2y  s.t. x + y <= 4, x <= 2  => x=2, y=2, obj=-6
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(r(-1, 1));
        let y = lp.add_var(r(-2, 1));
        lp.add_constraint(vec![(x, Rat::ONE), (y, Rat::ONE)], Cmp::Le, r(4, 1));
        lp.bound_var(x, r(2, 1));
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, r(-8, 1)); // actually x=0, y=4 gives -8
        assert_eq!(sol.x[1], r(4, 1));
    }

    #[test]
    fn phase1_needed_ge() {
        // min x + y  s.t. x + 2y >= 4, 3x + y >= 6 => intersection (8/5, 6/5), obj 14/5
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(Rat::ONE);
        let y = lp.add_var(Rat::ONE);
        lp.add_constraint(vec![(x, Rat::ONE), (y, r(2, 1))], Cmp::Ge, r(4, 1));
        lp.add_constraint(vec![(x, r(3, 1)), (y, Rat::ONE)], Cmp::Ge, r(6, 1));
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, r(14, 5));
        assert_eq!(sol.x, vec![r(8, 5), r(6, 5)]);
    }

    #[test]
    fn equality_constraints() {
        // min 2x + 3y s.t. x + y = 5, x - y = 1 => x=3, y=2, obj=12
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(r(2, 1));
        let y = lp.add_var(r(3, 1));
        lp.add_constraint(vec![(x, Rat::ONE), (y, Rat::ONE)], Cmp::Eq, r(5, 1));
        lp.add_constraint(vec![(x, Rat::ONE), (y, r(-1, 1))], Cmp::Eq, r(1, 1));
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.x, vec![r(3, 1), r(2, 1)]);
        assert_eq!(sol.objective, r(12, 1));
    }

    #[test]
    fn infeasible_detected() {
        // x >= 3 and x <= 1
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(Rat::ONE);
        lp.add_constraint(vec![(x, Rat::ONE)], Cmp::Ge, r(3, 1));
        lp.bound_var(x, Rat::ONE);
        assert_eq!(solve(&lp).status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        // min -x with only x >= 1
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(r(-1, 1));
        lp.add_constraint(vec![(x, Rat::ONE)], Cmp::Ge, Rat::ONE);
        assert_eq!(solve(&lp).status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_rhs_normalization() {
        // min x s.t. -x <= -3  (i.e. x >= 3)
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(Rat::ONE);
        lp.add_constraint(vec![(x, r(-1, 1))], Cmp::Le, r(-3, 1));
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.x[0], r(3, 1));
    }

    #[test]
    fn redundant_equalities_ok() {
        // x + y = 2 listed twice plus min x.
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(Rat::ONE);
        let y = lp.add_var(Rat::ZERO);
        lp.add_constraint(vec![(x, Rat::ONE), (y, Rat::ONE)], Cmp::Eq, r(2, 1));
        lp.add_constraint(vec![(x, Rat::ONE), (y, Rat::ONE)], Cmp::Eq, r(2, 1));
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, Rat::ZERO);
        assert_eq!(sol.x[1], r(2, 1));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // A classic degenerate LP (multiple bases at the same vertex).
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let x = lp.add_var(r(-3, 4));
        let y = lp.add_var(r(150, 1));
        let z = lp.add_var(r(-1, 50));
        let w = lp.add_var(r(6, 1));
        lp.add_constraint(
            vec![(x, r(1, 4)), (y, r(-60, 1)), (z, r(-1, 25)), (w, r(9, 1))],
            Cmp::Le,
            Rat::ZERO,
        );
        lp.add_constraint(
            vec![(x, r(1, 2)), (y, r(-90, 1)), (z, r(-1, 50)), (w, r(3, 1))],
            Cmp::Le,
            Rat::ZERO,
        );
        lp.add_constraint(vec![(z, Rat::ONE)], Cmp::Le, Rat::ONE);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, r(-1, 20)); // Beale's example optimum −1/20
    }

    #[test]
    fn f64_backend_agrees() {
        let mut lp: LpProblem<f64> = LpProblem::new();
        let x = lp.add_var(1.0);
        let y = lp.add_var(1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 2.0)], Cmp::Ge, 4.0);
        lp.add_constraint(vec![(x, 3.0), (y, 1.0)], Cmp::Ge, 6.0);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 14.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_constraint_problem() {
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let _ = lp.add_var(Rat::ONE);
        let sol = solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, Rat::ZERO);
    }
}

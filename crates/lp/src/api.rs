//! The unified solver surface: one fallible core, [`solve_lp`], replacing
//! the accreted `solve_revised*` / `try_solve_revised*` /
//! `solve_hybrid*` entry-point zoo with a single policy-driven dispatch.
//!
//! [`LpOptions`] carries every solve policy — engine
//! ([`SolverBackend`]), float-pass pricing and budgets
//! ([`crate::bounds::BoundedOptions`]), certification tier
//! ([`CertifyMode`]), and an optional warm-start snapshot pool — behind a
//! chainable builder, so adding a policy is a new option field rather
//! than a new `solve_*` name. The legacy entry points survive as thin
//! `#[deprecated]` shims over the same engines (removal is planned two
//! growth generations out; see `ARCHITECTURE.md`), so downstream code
//! migrates at its own pace with zero behaviour change.

use crate::bounds::BoundedOptions;
use crate::model::LpProblem;
use crate::rational::Rat;
use crate::simplex::{
    self, solve_hybrid_core, try_solve_revised_core, CertifyMode, LpSolution, RevisedOptions,
    SolveStats,
};
use crate::warm::{try_solve_revised_warm_core, BasisSnapshot, WarmReport};
use abt_core::error::SolveFailure;

/// Which solver engine [`solve_lp`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverBackend {
    /// Dense two-phase simplex with every pivot in exact rationals — the
    /// engine of last resort. Slow, but with no float pass there is
    /// nothing to certify or refute.
    DenseExact,
    /// Dense `f64` search with exact certification of the terminal basis
    /// and an internal dense-exact fallback; bounds and VUBs are
    /// materialized as rows. Never fails — the fallback absorbs every
    /// refutation.
    DenseHybrid,
    /// The bounded revised simplex — implicit bounds, Schrage-style VUB
    /// pivoting, partial pricing, sparse-LU certification, optional warm
    /// starts. The default, and the only backend that consults
    /// `snapshots`, budgets, and `certify`.
    #[default]
    Revised,
}

/// The full solve policy of [`solve_lp`], composed with a chainable
/// builder:
///
/// ```
/// use abt_lp::{CertifyMode, LpOptions};
/// let opts = LpOptions::new().certify(CertifyMode::Exact);
/// assert_eq!(opts.certify, CertifyMode::Exact);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct LpOptions<'pool> {
    /// The engine to run; see [`SolverBackend`].
    pub backend: SolverBackend,
    /// Float-pass pricing window and pivot/refactorization/wall-time
    /// budgets (`Revised` backend only).
    pub pricing: BoundedOptions,
    /// Certification tier policy for the terminal basis (`Revised`
    /// backend only; the dense backends certify exactly by construction).
    pub certify: CertifyMode,
    /// Warm-start candidates, tried in order (`Revised` backend only).
    pub snapshots: &'pool [BasisSnapshot],
    /// With a `true`, a `Revised` solve never falls through to a cold
    /// solve: exhausting `snapshots` returns
    /// [`SolveFailure::ShapeDrift`]. This is rung 1 of the supervision
    /// ladder in `abt-active`, where the supervisor decides what a pool
    /// miss costs.
    pub warm_only: bool,
}

impl<'pool> LpOptions<'pool> {
    /// The default policy: cold `Revised` backend, default pricing, no
    /// budgets, [`CertifyMode::IntervalThenExact`].
    pub fn new() -> LpOptions<'static> {
        LpOptions::default()
    }

    /// Selects the engine.
    pub fn backend(mut self, backend: SolverBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the float-pass pricing window and budgets.
    pub fn pricing(mut self, pricing: BoundedOptions) -> Self {
        self.pricing = pricing;
        self
    }

    /// Sets the certification tier policy.
    pub fn certify(mut self, certify: CertifyMode) -> Self {
        self.certify = certify;
        self
    }

    /// Offers warm-start candidates (tried in order; see
    /// [`crate::warm`]). Re-borrows the options at the pool's lifetime.
    pub fn snapshots<'b>(self, pool: &'b [BasisSnapshot]) -> LpOptions<'b> {
        LpOptions {
            backend: self.backend,
            pricing: self.pricing,
            certify: self.certify,
            snapshots: pool,
            warm_only: self.warm_only,
        }
    }

    /// Makes a `Revised` solve warm-only (see [`LpOptions::warm_only`]).
    pub fn warm_only(mut self, on: bool) -> Self {
        self.warm_only = on;
        self
    }

    /// The revised-engine view of this policy.
    pub(crate) fn revised(&self) -> RevisedOptions {
        RevisedOptions {
            pricing: self.pricing,
            certify: self.certify,
        }
    }
}

/// Result of [`solve_lp`]: the certified solution plus provenance and
/// solve counters — the union of the legacy `HybridReport` and
/// `WarmReport` surfaces.
#[derive(Debug, Clone)]
pub struct LpReport {
    /// The exact solution: status, objective, `x`, row duals. Bit
    /// identical across every backend and certify mode.
    pub solution: LpSolution<Rat>,
    /// `true` iff the answer came from the pure exact dense path — the
    /// `DenseExact` backend itself, or a dense-backend internal fallback.
    pub fallback: bool,
    /// `true` iff a warm-installed snapshot produced the certified
    /// answer.
    pub warm_hit: bool,
    /// Snapshot of the verified terminal basis for future warm starts
    /// (`Revised` backend, non-fallback solves only).
    pub snapshot: Option<BasisSnapshot>,
    /// Pivot/flip/refactorization counters and the per-tier certify
    /// clocks.
    pub stats: SolveStats,
}

impl LpReport {
    fn from_warm(wr: WarmReport) -> LpReport {
        LpReport {
            solution: wr.report.solution,
            fallback: wr.report.fallback,
            warm_hit: wr.warm_hit,
            snapshot: wr.snapshot,
            stats: wr.report.stats,
        }
    }
}

/// Solves `lp` under the policy in `opts` — **the** entry point every
/// other solve name shims onto.
///
/// Dispatch: the `DenseExact` and `DenseHybrid` backends never fail (the
/// hybrid absorbs refutations in its internal exact fallback). The
/// `Revised` backend tries the warm pool first (when one is offered),
/// falls through to a cold revised solve on a routine pool miss — unless
/// `warm_only` — and surfaces every genuine failure as a typed
/// [`SolveFailure`] so callers (the supervision ladder in `abt-active`)
/// choose the next rung. An `Ok` from the `Revised` backend is always an
/// exactly certified optimum; which certification *tier* proved dual
/// feasibility is reported in [`SolveStats::interval_accepts`] /
/// [`SolveStats::interval_escalations`].
///
/// ```
/// use abt_lp::{solve_lp, Cmp, LpOptions, LpProblem, LpStatus, Rat};
///
/// // min −x − z  s.t.  x + y + z ≥ 1,  y ≤ 4 (implicit bound),
/// //                   x ≤ y (VUB family: key y, dependent x), z ≤ 2.
/// let mut lp: LpProblem<Rat> = LpProblem::new();
/// let x = lp.add_var(Rat::from_int(-1));
/// let y = lp.add_var(Rat::ZERO);
/// let z = lp.add_var(Rat::from_int(-1));
/// lp.add_constraint(
///     vec![(x, Rat::ONE), (y, Rat::ONE), (z, Rat::ONE)],
///     Cmp::Ge,
///     Rat::ONE,
/// );
/// lp.set_upper(y, Rat::from_int(4));
/// lp.set_upper(z, Rat::from_int(2));
/// lp.set_vub(x, y);
///
/// let rep = solve_lp(&lp, &LpOptions::new()).expect("clean solve");
/// assert_eq!(rep.solution.status, LpStatus::Optimal);
/// assert_eq!(rep.solution.objective, Rat::from_int(-6));
/// assert!(lp.is_feasible(&rep.solution.x));
/// ```
pub fn solve_lp(lp: &LpProblem<Rat>, opts: &LpOptions) -> Result<LpReport, SolveFailure> {
    match opts.backend {
        SolverBackend::DenseExact => Ok(LpReport {
            solution: simplex::solve(lp),
            fallback: true,
            warm_hit: false,
            snapshot: None,
            stats: SolveStats::default(),
        }),
        SolverBackend::DenseHybrid => {
            let rep = solve_hybrid_core(lp, opts.certify);
            Ok(LpReport {
                solution: rep.solution,
                fallback: rep.fallback,
                warm_hit: false,
                snapshot: None,
                stats: rep.stats,
            })
        }
        SolverBackend::Revised => {
            let ropts = opts.revised();
            if !opts.snapshots.is_empty() {
                match try_solve_revised_warm_core(lp, &ropts, opts.snapshots) {
                    Ok(wr) => return Ok(LpReport::from_warm(wr)),
                    // A pool miss is a routine cache outcome; fall through
                    // to the cold solve unless the caller owns that
                    // decision.
                    Err(SolveFailure::ShapeDrift) if !opts.warm_only => {}
                    Err(f) => return Err(f),
                }
            } else if opts.warm_only {
                return Err(SolveFailure::ShapeDrift);
            }
            let (report, prop) = try_solve_revised_core(lp, &ropts)?;
            let snapshot = prop.as_ref().and_then(BasisSnapshot::from_proposal);
            Ok(LpReport {
                solution: report.solution,
                fallback: report.fallback,
                warm_hit: false,
                snapshot,
                stats: report.stats,
            })
        }
    }
}

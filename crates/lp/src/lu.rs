//! Sparse LU factorization of a basis matrix, generic over the scalar.
//!
//! The revised simplex needs two kinds of solves against the basis matrix
//! `B`: `B·x = v` (FTRAN — basic values, entering columns) and
//! `Bᵀ·y = c_B` (BTRAN — simplex multipliers). The paper's LPs give `B`
//! columns with at most 3 nonzeros (a structural `x_{I,j}` column touches
//! its variable-upper-bound row, one capacity row, and one demand row), so
//! a sparsity-guided elimination keeps the factors near-linear in the
//! nonzero count instead of the `O(m³)` a dense factorization would pay.
//!
//! The same code serves both worlds of the hybrid solver:
//!
//! * `SparseLu<f64>` inside the float-first bounded revised simplex
//!   (refactorized periodically, with product-form updates in between), and
//! * `SparseLu<Rat>` for the *exact* verification of the terminal basis,
//!   replacing the PR-1 dense exact refactorization (`O(m²·cols)`) with a
//!   factorization that is near-linear in `nnz(B)` on LP1 bases.
//!
//! # Pivoting
//!
//! Pivot columns are chosen by a Markowitz-style rule: a bucket queue keyed
//! by column nonzero count yields the sparsest eligible columns, and among
//! a small candidate set the pivot with the largest magnitude (via a lossy
//! `to_f64` — only the *choice* is approximate, never the arithmetic) wins.
//! For `f64` this doubles as threshold partial pivoting; for `Rat` any
//! exactly nonzero pivot is valid and the magnitude preference merely keeps
//! intermediate numerators small.

use crate::arena::SolveArena;
use crate::scalar::Scalar;

/// How many candidate columns the pivot search inspects per step.
const PIVOT_CANDIDATES: usize = 4;

/// Candidate pivots with `|value|` below this (in the lossy `f64` view) are
/// deferred in favour of denser but better-conditioned columns.
const TINY_PIVOT: f64 = 1e-8;

/// An LU factorization `B = L·U` (with implicit row/column permutations)
/// of a square sparse matrix, supporting solves against `B` and `Bᵀ`.
#[derive(Debug, Clone)]
pub struct SparseLu<S> {
    m: usize,
    /// Original row of the pivot chosen at each elimination step.
    steprow: Vec<usize>,
    /// Original column of the pivot chosen at each elimination step.
    stepcol: Vec<usize>,
    /// Pivot values `U[k,k]` per step.
    upiv: Vec<S>,
    /// Unit-lower-triangular multipliers per step: `(original row, L[i,k])`
    /// over rows eliminated at a later step.
    lcols: Vec<Vec<(usize, S)>>,
    /// Upper-triangular row per step: `(original column, U[k,j])` over
    /// columns eliminated at a later step (the pivot itself is `upiv`).
    urows: Vec<Vec<(usize, S)>>,
    /// Original column → elimination step.
    colstep: Vec<usize>,
}

impl<S: Scalar> SparseLu<S> {
    /// Factorizes the `m × m` matrix whose `j`-th column holds the sparse
    /// entries `(row, value)` of `cols[j]`. Returns `None` if the matrix is
    /// (numerically) singular.
    pub fn factor(m: usize, cols: &[Vec<(usize, S)>]) -> Option<SparseLu<S>> {
        assert_eq!(cols.len(), m, "basis must be square");
        // Working copy: sorted columns, exact-zero entries dropped.
        let mut acols: Vec<Vec<(usize, S)>> = cols
            .iter()
            .map(|c| {
                let mut v: Vec<(usize, S)> =
                    c.iter().filter(|e| !e.1.is_zero_s()).cloned().collect();
                v.sort_unstable_by_key(|e| e.0);
                v.windows(2).for_each(|w| {
                    debug_assert_ne!(w[0].0, w[1].0, "duplicate row entry in basis column")
                });
                v
            })
            .collect();
        let mut rows_of: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (j, col) in acols.iter().enumerate() {
            for (i, _) in col {
                rows_of[*i].push(j);
            }
        }
        let mut row_alive = vec![true; m];
        let mut col_alive = vec![true; m];
        // Bucket queue over column nonzero counts (lazy deletion: entries
        // are revalidated against the current count when popped).
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); m + 1];
        for (j, col) in acols.iter().enumerate() {
            buckets[col.len()].push(j);
        }

        let mut lu = SparseLu {
            m,
            steprow: Vec::with_capacity(m),
            stepcol: Vec::with_capacity(m),
            upiv: Vec::with_capacity(m),
            lcols: Vec::with_capacity(m),
            urows: Vec::with_capacity(m),
            colstep: vec![usize::MAX; m],
        };

        for _step in 0..m {
            // --- pivot selection -----------------------------------------
            let mut cands: Vec<usize> = Vec::with_capacity(PIVOT_CANDIDATES);
            let mut stash: Vec<(usize, usize)> = Vec::new(); // (count, col) to restore
            'gather: for count in 1..=m {
                while let Some(j) = buckets[count].pop() {
                    if !col_alive[j] || acols[j].len() != count {
                        if col_alive[j] && !acols[j].is_empty() {
                            buckets[acols[j].len()].push(j);
                        }
                        continue;
                    }
                    cands.push(j);
                    stash.push((count, j));
                    if cands.len() >= PIVOT_CANDIDATES {
                        break 'gather;
                    }
                }
            }
            // Restore candidates so future steps can still find them.
            for (count, j) in stash {
                buckets[count].push(j);
            }
            // Among the sparsest candidates prefer the largest pivot; defer
            // tiny pivots to denser candidates when possible.
            let mut choice: Option<(usize, usize, f64)> = None; // (col, row, |v|)
            for &j in &cands {
                let (mut best_row, mut best_abs) = (usize::MAX, -1.0f64);
                for (i, v) in &acols[j] {
                    let a = v.to_f64().abs();
                    if a > best_abs {
                        best_abs = a;
                        best_row = *i;
                    }
                }
                debug_assert!(best_row != usize::MAX);
                let take = match &choice {
                    None => true,
                    Some((_, _, abs)) => *abs < TINY_PIVOT && best_abs > *abs,
                };
                if take {
                    choice = Some((j, best_row, best_abs));
                }
                if choice.map(|(_, _, a)| a >= TINY_PIVOT) == Some(true) {
                    break;
                }
            }
            let (pc, pr, _) = choice?; // no eligible column: singular
            let pivot_col = std::mem::take(&mut acols[pc]);
            let pivval = pivot_col
                .iter()
                .find(|(i, _)| *i == pr)
                .map(|(_, v)| v.clone())
                .expect("pivot entry present");
            if pivval.is_zero_s() {
                return None;
            }
            // L multipliers: the pivot column below/above the pivot row.
            let mut lcol: Vec<(usize, S)> = Vec::with_capacity(pivot_col.len() - 1);
            for (i, v) in &pivot_col {
                if *i != pr {
                    lcol.push((*i, v.div(&pivval)));
                }
            }
            // U row + Schur update of every alive column with an entry in
            // the pivot row.
            let touched = std::mem::take(&mut rows_of[pr]);
            let mut urow: Vec<(usize, S)> = Vec::new();
            for c2 in touched {
                if c2 == pc || !col_alive[c2] {
                    continue;
                }
                let Ok(pos) = acols[c2].binary_search_by_key(&pr, |e| e.0) else {
                    continue; // stale adjacency entry
                };
                let a_rc = acols[c2][pos].1.clone();
                if a_rc.is_zero_s() {
                    acols[c2].remove(pos);
                    continue;
                }
                urow.push((c2, a_rc.clone()));
                let f = a_rc.div(&pivval);
                // Sparse merge: acols[c2] ← acols[c2] − f · lcol·pivval
                // (i.e. subtract f times the pivot column, dropping row pr).
                let old = std::mem::take(&mut acols[c2]);
                let mut merged: Vec<(usize, S)> = Vec::with_capacity(old.len() + lcol.len());
                let (mut ai, mut bi) = (0usize, 0usize);
                while ai < old.len() || bi < pivot_col.len() {
                    // Skip the pivot-row entries on both sides.
                    if ai < old.len() && old[ai].0 == pr {
                        ai += 1;
                        continue;
                    }
                    if bi < pivot_col.len() && pivot_col[bi].0 == pr {
                        bi += 1;
                        continue;
                    }
                    let arow = old.get(ai).map(|e| e.0).unwrap_or(usize::MAX);
                    let brow = pivot_col.get(bi).map(|e| e.0).unwrap_or(usize::MAX);
                    match arow.cmp(&brow) {
                        std::cmp::Ordering::Less => {
                            merged.push(old[ai].clone());
                            ai += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            let v = f.mul(&pivot_col[bi].1).neg();
                            if !v.is_zero_s() {
                                rows_of[brow].push(c2); // fill-in
                                merged.push((brow, v));
                            }
                            bi += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            let v = old[ai].1.sub(&f.mul(&pivot_col[bi].1));
                            if !v.is_zero_s() {
                                merged.push((arow, v));
                            }
                            ai += 1;
                            bi += 1;
                        }
                    }
                }
                acols[c2] = merged;
                buckets[acols[c2].len().min(m)].push(c2);
            }
            row_alive[pr] = false;
            col_alive[pc] = false;
            lu.colstep[pc] = lu.steprow.len();
            lu.steprow.push(pr);
            lu.stepcol.push(pc);
            lu.upiv.push(pivval);
            lu.lcols.push(lcol);
            lu.urows.push(urow);
        }
        Some(lu)
    }

    /// Solves `B·x = v`; `v` is indexed by original rows, the result by
    /// original columns.
    pub fn solve(&self, v: &[S]) -> Vec<S> {
        assert_eq!(v.len(), self.m);
        let mut y = v.to_vec();
        let mut xstep = vec![S::zero(); self.m];
        let mut x = vec![S::zero(); self.m];
        self.solve_into(&mut y, &mut xstep, &mut x);
        x
    }

    /// FTRAN core on caller-provided length-`m` buffers: `y` holds the
    /// right-hand side on entry and is destroyed; `xstep` is scratch; `x`
    /// receives the solution (every entry is overwritten).
    fn solve_into(&self, y: &mut [S], xstep: &mut [S], x: &mut [S]) {
        for k in 0..self.m {
            let yk = y[self.steprow[k]].clone();
            if !yk.is_zero_s() {
                for (i, l) in &self.lcols[k] {
                    y[*i] = y[*i].sub(&l.mul(&yk));
                }
            }
        }
        for k in (0..self.m).rev() {
            let mut acc = y[self.steprow[k]].clone();
            for (c, u) in &self.urows[k] {
                let xs = &xstep[self.colstep[*c]];
                if !xs.is_zero_s() {
                    acc = acc.sub(&u.mul(xs));
                }
            }
            xstep[k] = acc.div(&self.upiv[k]);
        }
        for k in 0..self.m {
            x[self.stepcol[k]] = xstep[k].clone();
        }
    }

    /// Solves `Bᵀ·y = c`; `c` is indexed by original columns, the result by
    /// original rows.
    pub fn solve_transposed(&self, c: &[S]) -> Vec<S> {
        assert_eq!(c.len(), self.m);
        let mut cacc = c.to_vec();
        let mut w = vec![S::zero(); self.m];
        let mut z = vec![S::zero(); self.m];
        self.solve_transposed_into(&mut cacc, &mut w, &mut z);
        z
    }

    /// BTRAN core on caller-provided length-`m` buffers: `cacc` holds the
    /// cost vector on entry and is destroyed; `w` is scratch; `z` receives
    /// the solution (every entry is overwritten).
    fn solve_transposed_into(&self, cacc: &mut [S], w: &mut [S], z: &mut [S]) {
        for k in 0..self.m {
            let wk = cacc[self.stepcol[k]].div(&self.upiv[k]);
            if !wk.is_zero_s() {
                for (col, u) in &self.urows[k] {
                    cacc[*col] = cacc[*col].sub(&u.mul(&wk));
                }
            }
            w[k] = wk;
        }
        for k in (0..self.m).rev() {
            let mut acc = w[k].clone();
            for (i, l) in &self.lcols[k] {
                let zi = &z[*i];
                if !zi.is_zero_s() {
                    acc = acc.sub(&l.mul(zi));
                }
            }
            z[self.steprow[k]] = acc;
        }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.m
    }
}

impl SparseLu<f64> {
    /// [`SparseLu::solve`] with every work vector drawn from (and the
    /// scratch returned to) `arena`. The returned solution is itself an
    /// arena buffer — give it back when done to keep the revised simplex's
    /// per-pivot FTRANs allocator-quiet.
    pub fn solve_pooled(&self, v: &[f64], arena: &mut SolveArena) -> Vec<f64> {
        assert_eq!(v.len(), self.m);
        let mut y = arena.take_f64(self.m, 0.0);
        y.copy_from_slice(v);
        let mut xstep = arena.take_f64(self.m, 0.0);
        let mut x = arena.take_f64(self.m, 0.0);
        self.solve_into(&mut y, &mut xstep, &mut x);
        arena.give_f64(y);
        arena.give_f64(xstep);
        x
    }

    /// [`SparseLu::solve_transposed`] with every work vector drawn from
    /// (and the scratch returned to) `arena`; the returned solution is an
    /// arena buffer.
    pub fn solve_transposed_pooled(&self, c: &[f64], arena: &mut SolveArena) -> Vec<f64> {
        assert_eq!(c.len(), self.m);
        let mut cacc = arena.take_f64(self.m, 0.0);
        cacc.copy_from_slice(c);
        let mut w = arena.take_f64(self.m, 0.0);
        let mut z = arena.take_f64(self.m, 0.0);
        self.solve_transposed_into(&mut cacc, &mut w, &mut z);
        arena.give_f64(cacc);
        arena.give_f64(w);
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::Rat;

    fn r(p: i64, q: i64) -> Rat {
        Rat::new(p as i128, q as i128)
    }

    /// Dense multiply `B·x` from sparse columns.
    fn mul<S: Scalar>(m: usize, cols: &[Vec<(usize, S)>], x: &[S]) -> Vec<S> {
        let mut out = vec![S::zero(); m];
        for (j, col) in cols.iter().enumerate() {
            for (i, v) in col {
                out[*i] = out[*i].add(&v.mul(&x[j]));
            }
        }
        out
    }

    /// Dense multiply `Bᵀ·z`.
    fn mul_t<S: Scalar>(cols: &[Vec<(usize, S)>], z: &[S]) -> Vec<S> {
        cols.iter()
            .map(|col| {
                let mut acc = S::zero();
                for (i, v) in col {
                    acc = acc.add(&v.mul(&z[*i]));
                }
                acc
            })
            .collect()
    }

    #[test]
    fn exact_solve_roundtrips() {
        // A 4×4 with LP1-like column shapes (≤ 3 nonzeros each).
        let cols: Vec<Vec<(usize, Rat)>> = vec![
            vec![(0, r(1, 1)), (2, r(-1, 1))],
            vec![(0, r(2, 1)), (1, r(1, 1)), (3, r(1, 2))],
            vec![(1, r(3, 1)), (2, r(1, 1))],
            vec![(2, r(5, 1)), (3, r(-2, 3))],
        ];
        let lu = SparseLu::factor(4, &cols).expect("nonsingular");
        let x_true = vec![r(1, 2), r(-2, 1), r(3, 5), r(7, 1)];
        let v = mul(4, &cols, &x_true);
        assert_eq!(lu.solve(&v), x_true);
        let z_true = vec![r(4, 3), r(0, 1), r(-1, 7), r(2, 1)];
        let c = mul_t(&cols, &z_true);
        assert_eq!(lu.solve_transposed(&c), z_true);
    }

    #[test]
    fn singular_detected() {
        // Column 2 = column 0 + column 1.
        let cols: Vec<Vec<(usize, Rat)>> = vec![
            vec![(0, r(1, 1)), (1, r(1, 1))],
            vec![(1, r(1, 1)), (2, r(1, 1))],
            vec![(0, r(1, 1)), (1, r(2, 1)), (2, r(1, 1))],
        ];
        assert!(SparseLu::factor(3, &cols).is_none());
        // An empty column is singular too.
        let cols2: Vec<Vec<(usize, Rat)>> = vec![vec![(0, r(1, 1))], vec![]];
        assert!(SparseLu::factor(2, &cols2).is_none());
    }

    #[test]
    fn f64_solve_is_accurate() {
        let cols: Vec<Vec<(usize, f64)>> = vec![
            vec![(0, 1.0), (3, -1.0)],
            vec![(0, 1.0), (1, 2.0)],
            vec![(1, 1.0), (2, 4.0), (3, 0.5)],
            vec![(2, -3.0), (3, 1.0)],
        ];
        let lu = SparseLu::factor(4, &cols).unwrap();
        let x_true = vec![2.0, -1.5, 0.25, 8.0];
        let v = mul(4, &cols, &x_true);
        for (a, b) in lu.solve(&v).iter().zip(&x_true) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
        let z_true = vec![1.0, 0.0, -2.0, 3.5];
        let c = mul_t(&cols, &z_true);
        for (a, b) in lu.solve_transposed(&c).iter().zip(&z_true) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn random_exact_roundtrip() {
        // Pseudo-random sparse matrices; skip the singular draws.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut solved = 0;
        for _ in 0..40 {
            let m = 3 + (next() % 6) as usize;
            let mut cols: Vec<Vec<(usize, Rat)>> = Vec::new();
            for _ in 0..m {
                let nnz = 1 + (next() % 3) as usize;
                let mut col = Vec::new();
                for _ in 0..nnz {
                    let row = (next() % m as u64) as usize;
                    if col.iter().any(|(r2, _)| *r2 == row) {
                        continue;
                    }
                    let val = (next() % 9) as i64 - 4;
                    if val != 0 {
                        col.push((row, Rat::from_int(val)));
                    }
                }
                cols.push(col);
            }
            let Some(lu) = SparseLu::factor(m, &cols) else {
                continue;
            };
            solved += 1;
            let x_true: Vec<Rat> = (0..m).map(|i| r(i as i64 + 1, 3)).collect();
            let v = mul(m, &cols, &x_true);
            assert_eq!(lu.solve(&v), x_true);
            let c = mul_t(&cols, &x_true);
            assert_eq!(lu.solve_transposed(&c), x_true);
        }
        assert!(solved >= 5, "too few nonsingular draws ({solved})");
    }
}

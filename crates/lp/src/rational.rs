//! Exact rational arithmetic over `i128`.
//!
//! The §3 rounding algorithm branches on exact comparisons of LP values
//! (`Y_i − ⌊Y_i⌋` vs `½`, sums vs `1` and `3/2`). Solving the active-time LP
//! with floating point would make those branches noise-dependent, so the
//! simplex solver is generic and runs on these exact rationals by default.
//!
//! Values are kept normalized (`gcd(n, d) = 1`, `d > 0`). Arithmetic uses
//! cross-reduction to delay overflow; a genuine `i128` overflow panics with
//! a clear message (the workspace's LPs have tiny coefficients — {0, 1, g} —
//! and near-network structure, so vertex arithmetic stays small; the `f64`
//! backend exists for stress scales).

use std::cmp::Ordering;
use std::fmt;

/// An exact rational number `n / d` with `d > 0`, normalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    n: i128,
    d: i128,
}

#[inline]
fn gcd(a: i128, b: i128) -> i128 {
    // 128-bit `%` is a software routine on every mainstream target, and
    // LP1 data keeps almost every operand within 64 bits (often ±1), so
    // dispatch to a hardware-width binary GCD whenever both fit. Every
    // branch returns the same value the plain i128 Euclid would.
    let mut a = a.unsigned_abs();
    let mut b = b.unsigned_abs();
    if a == 0 {
        return b.max(1) as i128;
    }
    if b == 0 {
        return a as i128;
    }
    if a == 1 || b == 1 {
        return 1;
    }
    loop {
        if (a | b) >> 64 == 0 {
            return gcd_u64(a as u64, b as u64) as i128;
        }
        let t = a % b;
        if t == 0 {
            return b as i128;
        }
        a = b;
        b = t;
    }
}

/// Stein's binary GCD on hardware words; both inputs nonzero.
#[inline]
fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            core::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

#[cold]
fn overflow() -> ! {
    panic!("abt-lp: exact rational overflow (i128); use the f64 backend for this problem size")
}

impl Rat {
    /// Zero.
    pub const ZERO: Rat = Rat { n: 0, d: 1 };
    /// One.
    pub const ONE: Rat = Rat { n: 1, d: 1 };

    /// Creates `n/d`, normalizing sign and common factors. Panics if `d = 0`.
    pub fn new(n: i128, d: i128) -> Rat {
        assert!(d != 0, "zero denominator");
        let (n, d) = if d < 0 { (-n, -d) } else { (n, d) };
        let g = gcd(n, d);
        if g == 1 {
            return Rat { n, d };
        }
        Rat { n: n / g, d: d / g }
    }

    /// From an integer.
    pub fn from_int(v: i64) -> Rat {
        Rat { n: v as i128, d: 1 }
    }

    /// Numerator.
    pub fn numer(&self) -> i128 {
        self.n
    }

    /// Denominator (positive).
    pub fn denom(&self) -> i128 {
        self.d
    }

    /// Exact sum.
    pub fn add(&self, o: &Rat) -> Rat {
        // a/b + c/e = (a·(e/g) + c·(b/g)) / (b·(e/g)) with g = gcd(b, e).
        let g = gcd(self.d, o.d);
        let (e_g, b_g) = if g == 1 {
            (o.d, self.d)
        } else {
            (o.d / g, self.d / g)
        };
        let num = self
            .n
            .checked_mul(e_g)
            .and_then(|x| o.n.checked_mul(b_g).and_then(|y| x.checked_add(y)))
            .unwrap_or_else(|| overflow());
        let den = self.d.checked_mul(e_g).unwrap_or_else(|| overflow());
        Rat::new(num, den)
    }

    /// Exact difference.
    pub fn sub(&self, o: &Rat) -> Rat {
        self.add(&o.neg())
    }

    /// Exact product with cross-reduction.
    pub fn mul(&self, o: &Rat) -> Rat {
        let g1 = gcd(self.n, o.d);
        let g2 = gcd(o.n, self.d);
        let (an, bd) = if g1 == 1 {
            (self.n, o.d)
        } else {
            (self.n / g1, o.d / g1)
        };
        let (bn, ad) = if g2 == 1 {
            (o.n, self.d)
        } else {
            (o.n / g2, self.d / g2)
        };
        let n = an.checked_mul(bn).unwrap_or_else(|| overflow());
        let d = ad.checked_mul(bd).unwrap_or_else(|| overflow());
        Rat { n, d } // already reduced by construction
    }

    /// Exact quotient; panics on division by zero.
    pub fn div(&self, o: &Rat) -> Rat {
        assert!(o.n != 0, "division by zero rational");
        let recip = if o.n < 0 {
            Rat { n: -o.d, d: -o.n }
        } else {
            Rat { n: o.d, d: o.n }
        };
        self.mul(&recip)
    }

    /// Negation.
    pub fn neg(&self) -> Rat {
        Rat {
            n: -self.n,
            d: self.d,
        }
    }

    /// `⌊self⌋`.
    pub fn floor(&self) -> i128 {
        self.n.div_euclid(self.d)
    }

    /// `⌈self⌉`.
    pub fn ceil(&self) -> i128 {
        -((-self.n).div_euclid(self.d))
    }

    /// The fractional part `self − ⌊self⌋ ∈ [0, 1)`.
    pub fn fract(&self) -> Rat {
        self.sub(&Rat::from_int(self.floor() as i64))
    }

    /// Whether the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.n == 0
    }

    /// Sign as an integer in {-1, 0, 1}.
    pub fn signum(&self) -> i32 {
        self.n.signum() as i32
    }

    /// Lossy conversion for reporting.
    pub fn to_f64(&self) -> f64 {
        self.n as f64 / self.d as f64
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare a/b vs c/e via a·e vs c·b with checked arithmetic.
        let l = self.n.checked_mul(other.d);
        let r = other.n.checked_mul(self.d);
        match (l, r) {
            (Some(l), Some(r)) => l.cmp(&r),
            _ => self
                .to_f64()
                .partial_cmp(&other.to_f64())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.d == 1 {
            write!(f, "{}", self.n)
        } else {
            write!(f, "{}/{}", self.n, self.d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_and_display() {
        assert_eq!(Rat::new(4, 6), Rat::new(2, 3));
        assert_eq!(Rat::new(-4, -6), Rat::new(2, 3));
        assert_eq!(Rat::new(4, -6), Rat::new(-2, 3));
        assert_eq!(Rat::new(2, 3).to_string(), "2/3");
        assert_eq!(Rat::from_int(5).to_string(), "5");
    }

    #[test]
    fn field_ops() {
        let a = Rat::new(1, 2);
        let b = Rat::new(1, 3);
        assert_eq!(a.add(&b), Rat::new(5, 6));
        assert_eq!(a.sub(&b), Rat::new(1, 6));
        assert_eq!(a.mul(&b), Rat::new(1, 6));
        assert_eq!(a.div(&b), Rat::new(3, 2));
        assert_eq!(a.neg(), Rat::new(-1, 2));
    }

    #[test]
    fn floor_ceil_fract() {
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::new(7, 2).fract(), Rat::new(1, 2));
        assert_eq!(Rat::from_int(3).fract(), Rat::ZERO);
        assert_eq!(Rat::new(-1, 4).fract(), Rat::new(3, 4));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(2, 3) < Rat::new(3, 4));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert_eq!(Rat::new(2, 4).cmp(&Rat::new(1, 2)), Ordering::Equal);
    }

    #[test]
    fn signum_and_zero() {
        assert!(Rat::ZERO.is_zero());
        assert_eq!(Rat::new(-3, 7).signum(), -1);
        assert_eq!(Rat::new(3, 7).signum(), 1);
        assert_eq!(Rat::ZERO.signum(), 0);
    }

    #[test]
    #[should_panic]
    fn division_by_zero_panics() {
        let _ = Rat::ONE.div(&Rat::ZERO);
    }
}

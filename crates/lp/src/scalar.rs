//! The scalar abstraction that makes the simplex solver generic over exact
//! rationals (default for the active-time LPs) and `f64` (stress scales).

use crate::rational::Rat;

/// Field operations plus the sign queries the simplex needs.
///
/// For `f64`, sign queries are epsilon-tolerant so that tiny round-off never
/// drives a pivot; for [`Rat`] they are exact.
pub trait Scalar: Clone + PartialEq + std::fmt::Debug + std::fmt::Display + 'static {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Embeds an integer.
    fn from_i64(v: i64) -> Self;
    /// Embeds a ratio `p/q` (`q > 0`).
    fn from_ratio(p: i64, q: i64) -> Self;
    /// `self + o`.
    fn add(&self, o: &Self) -> Self;
    /// `self − o`.
    fn sub(&self, o: &Self) -> Self;
    /// `self · o`.
    fn mul(&self, o: &Self) -> Self;
    /// `self / o` (caller guarantees `o` is nonzero by [`Scalar::sign`]).
    fn div(&self, o: &Self) -> Self;
    /// `−self`.
    fn neg(&self) -> Self;
    /// Sign in {-1, 0, 1} (tolerance-aware for floats).
    fn sign(&self) -> i32;
    /// Total order consistent with [`Scalar::sign`] of the difference.
    fn cmp_s(&self, o: &Self) -> std::cmp::Ordering;
    /// Lossy conversion for reporting.
    fn to_f64(&self) -> f64;

    /// `self == 0` up to tolerance.
    fn is_zero_s(&self) -> bool {
        self.sign() == 0
    }
    /// `self > 0` up to tolerance.
    fn is_pos(&self) -> bool {
        self.sign() > 0
    }
    /// `self < 0` up to tolerance.
    fn is_neg(&self) -> bool {
        self.sign() < 0
    }
}

/// Comparison tolerance for the `f64` backend.
pub const F64_EPS: f64 = 1e-9;

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_i64(v: i64) -> Self {
        v as f64
    }
    fn from_ratio(p: i64, q: i64) -> Self {
        p as f64 / q as f64
    }
    fn add(&self, o: &Self) -> Self {
        self + o
    }
    fn sub(&self, o: &Self) -> Self {
        self - o
    }
    fn mul(&self, o: &Self) -> Self {
        self * o
    }
    fn div(&self, o: &Self) -> Self {
        self / o
    }
    fn neg(&self) -> Self {
        -self
    }
    fn sign(&self) -> i32 {
        if *self > F64_EPS {
            1
        } else if *self < -F64_EPS {
            -1
        } else {
            0
        }
    }
    fn cmp_s(&self, o: &Self) -> std::cmp::Ordering {
        let d = self - o;
        if d > F64_EPS {
            std::cmp::Ordering::Greater
        } else if d < -F64_EPS {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Equal
        }
    }
    fn to_f64(&self) -> f64 {
        *self
    }
}

impl Scalar for Rat {
    fn zero() -> Self {
        Rat::ZERO
    }
    fn one() -> Self {
        Rat::ONE
    }
    fn from_i64(v: i64) -> Self {
        Rat::from_int(v)
    }
    fn from_ratio(p: i64, q: i64) -> Self {
        Rat::new(p as i128, q as i128)
    }
    fn add(&self, o: &Self) -> Self {
        Rat::add(self, o)
    }
    fn sub(&self, o: &Self) -> Self {
        Rat::sub(self, o)
    }
    fn mul(&self, o: &Self) -> Self {
        Rat::mul(self, o)
    }
    fn div(&self, o: &Self) -> Self {
        Rat::div(self, o)
    }
    fn neg(&self) -> Self {
        Rat::neg(self)
    }
    fn sign(&self) -> i32 {
        self.signum()
    }
    fn cmp_s(&self, o: &Self) -> std::cmp::Ordering {
        self.cmp(o)
    }
    fn to_f64(&self) -> f64 {
        Rat::to_f64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laws<S: Scalar>() {
        let two = S::from_i64(2);
        let three = S::from_i64(3);
        assert_eq!(two.add(&three), S::from_i64(5));
        assert_eq!(two.sub(&three).sign(), -1);
        assert_eq!(two.mul(&three), S::from_i64(6));
        assert_eq!(S::from_i64(6).div(&three), two);
        assert!(S::zero().is_zero_s());
        assert!(S::one().is_pos());
        assert!(S::one().neg().is_neg());
        assert_eq!(S::from_ratio(1, 2).add(&S::from_ratio(1, 2)), S::one());
        assert_eq!(two.cmp_s(&three), std::cmp::Ordering::Less);
    }

    #[test]
    fn f64_laws() {
        laws::<f64>();
        // Tolerance: a tiny residue counts as zero.
        assert!(1e-12f64.is_zero_s());
        assert!(!(1e-6f64).is_zero_s());
    }

    #[test]
    fn rat_laws() {
        laws::<Rat>();
        assert!(!Rat::new(1, 1_000_000_000_000).is_zero_s()); // exactness
    }
}

//! Outward-rounded `f64` interval arithmetic for the **directed-rounding
//! certification tier** (see [`crate::simplex`] and `CertifyMode`).
//!
//! An [`Iv`] is a closed interval `[lo, hi]` guaranteed to contain the
//! exact real value of the expression it was computed from. Every
//! operation rounds *outward* using `f64::next_down`/`f64::next_up` —
//! plain nearest-mode arithmetic widened by one ulp per inexact step, no
//! FPU rounding-mode games — so enclosures survive any compiler
//! reordering and cost only a couple of extra flops per operation.
//!
//! Two properties make the tier effective on the LP1 workloads:
//!
//! * **Exactness detection.** When an operation is exact in `f64`
//!   (detected with the classical two-sum residual for `+`/`−` and an
//!   `mul_add` residual for `×`/`÷`), the result is *not* widened. LP1
//!   data is small integers and dyadic rationals, so point intervals stay
//!   point intervals through most of a reduced-cost dot product — which is
//!   what lets the tier prove `d̄ ≥ 0` even when `d̄` is *exactly* zero
//!   (ubiquitous under the alternate optima of sibling runs).
//! * **Soundness under the weird values.** A NaN (from `∞ − ∞` or
//!   overflow chains) collapses to the entire real line, and an infinite
//!   bound produced by overflow is kept as an honest one-sided bound, so a
//!   blown-up enclosure can only ever *fail to prove* an inequality,
//!   never prove a false one.
//!
//! Conversion from [`Rat`] is also outward: numerator and denominator are
//! enclosed first (exactly, when `|v| ≤ 2⁵³`), then divided as intervals.

use crate::rational::Rat;

/// Largest integer magnitude exactly representable in `f64`.
const EXACT_INT: i128 = 1 << 53;

/// A closed outward-rounded interval; see the module docs for the
/// enclosure contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Iv {
    /// Lower bound (`≤` the exact value).
    pub lo: f64,
    /// Upper bound (`≥` the exact value).
    pub hi: f64,
}

/// Lower-bound widening: exact values pass through, inexact ones move one
/// ulp down, NaN collapses to `−∞`.
fn lo_bound(v: f64, exact: bool) -> f64 {
    if v.is_nan() {
        f64::NEG_INFINITY
    } else if exact {
        v
    } else {
        v.next_down()
    }
}

/// Upper-bound widening, mirror of [`lo_bound`].
fn hi_bound(v: f64, exact: bool) -> f64 {
    if v.is_nan() {
        f64::INFINITY
    } else if exact {
        v
    } else {
        v.next_up()
    }
}

/// `a + b` was exact in `f64` (two-sum residual is zero). Valid whenever
/// the sum is finite.
fn add_exact(a: f64, b: f64, s: f64) -> bool {
    if !s.is_finite() {
        return false;
    }
    let a1 = s - b;
    let b1 = s - a1;
    (a - a1) + (b - b1) == 0.0
}

/// `a * b` was exact in `f64` (fused residual is zero). The residual of an
/// inexact product is at least half an ulp of the product, which is
/// representable (subnormals) for every product above `≈ 1e-290`; below
/// that we conservatively report inexact.
fn mul_exact(a: f64, b: f64, p: f64) -> bool {
    p.is_finite()
        && (p == 0.0 && (a == 0.0 || b == 0.0) || p.abs() > 1e-290)
        && a.mul_add(b, -p) == 0.0
}

/// `a / b == q` exactly (so `q * b == a` with a zero fused residual).
fn div_exact(a: f64, b: f64, q: f64) -> bool {
    q.is_finite() && (q == 0.0 && a == 0.0 || q.abs() > 1e-290) && q.mul_add(b, -a) == 0.0
}

impl Iv {
    /// The degenerate point interval of an exactly-known `f64`.
    pub fn point(v: f64) -> Iv {
        Iv { lo: v, hi: v }
    }

    /// Outward enclosure of an `i128` (exact below `2⁵³`).
    pub fn from_i128(v: i128) -> Iv {
        let f = v as f64;
        if (-EXACT_INT..=EXACT_INT).contains(&v) {
            Iv::point(f)
        } else {
            Iv {
                lo: f.next_down(),
                hi: f.next_up(),
            }
        }
    }

    /// Outward enclosure of an exact rational: numerator over denominator,
    /// both enclosed first, divided as intervals. Integers below `2⁵³`
    /// (and dyadic rationals whose division is exact) stay point
    /// intervals.
    pub fn from_rat(r: &Rat) -> Iv {
        let n = Iv::from_i128(r.numer());
        let d = r.denom();
        if d == 1 {
            return n;
        }
        // `Rat` keeps denominators strictly positive, so the enclosure of
        // `d` never straddles zero and corner division is well defined.
        let d = Iv::from_i128(d);
        debug_assert!(d.lo > 0.0);
        let corner = |a: f64, b: f64| {
            let q = a / b;
            (q, div_exact(a, b, q))
        };
        let cs = [
            corner(n.lo, d.lo),
            corner(n.lo, d.hi),
            corner(n.hi, d.lo),
            corner(n.hi, d.hi),
        ];
        Iv {
            lo: cs
                .iter()
                .map(|&(q, ex)| lo_bound(q, ex))
                .fold(f64::INFINITY, f64::min),
            hi: cs
                .iter()
                .map(|&(q, ex)| hi_bound(q, ex))
                .fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// The enclosed value is provably `≥ 0`. `false` on NaN bounds.
    pub fn proves_nonneg(self) -> bool {
        self.lo >= 0.0
    }

    /// The enclosed value is provably `≤ 0`. `false` on NaN bounds.
    pub fn proves_nonpos(self) -> bool {
        self.hi <= 0.0
    }

    /// The enclosed value is provably `> 0` — a *violation* certificate
    /// for a `≤ 0` condition.
    pub fn proves_pos(self) -> bool {
        self.lo > 0.0
    }

    /// The enclosed value is provably `< 0` — a violation certificate for
    /// a `≥ 0` condition.
    pub fn proves_neg(self) -> bool {
        self.hi < 0.0
    }
}

/// Interval negation (exact).
impl std::ops::Neg for Iv {
    type Output = Iv;
    fn neg(self) -> Iv {
        Iv {
            lo: -self.hi,
            hi: -self.lo,
        }
    }
}

/// Outward interval addition; exact endpoint sums stay unwidened.
impl std::ops::Add for Iv {
    type Output = Iv;
    fn add(self, o: Iv) -> Iv {
        let lo = self.lo + o.lo;
        let hi = self.hi + o.hi;
        Iv {
            lo: lo_bound(lo, add_exact(self.lo, o.lo, lo)),
            hi: hi_bound(hi, add_exact(self.hi, o.hi, hi)),
        }
    }
}

/// Outward interval subtraction.
impl std::ops::Sub for Iv {
    type Output = Iv;
    fn sub(self, o: Iv) -> Iv {
        self + (-o)
    }
}

/// Outward interval multiplication over the four endpoint products.
impl std::ops::Mul for Iv {
    type Output = Iv;
    fn mul(self, o: Iv) -> Iv {
        let corner = |a: f64, b: f64| {
            let p = a * b;
            (p, mul_exact(a, b, p))
        };
        let cs = [
            corner(self.lo, o.lo),
            corner(self.lo, o.hi),
            corner(self.hi, o.lo),
            corner(self.hi, o.hi),
        ];
        Iv {
            lo: cs
                .iter()
                .map(|&(p, ex)| lo_bound(p, ex))
                .fold(f64::INFINITY, f64::min),
            hi: cs
                .iter()
                .map(|&(p, ex)| hi_bound(p, ex))
                .fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(p: i128, q: i128) -> Rat {
        Rat::new(p, q)
    }

    #[test]
    fn small_integers_and_dyadics_are_points() {
        for (p, q) in [(0, 1), (7, 1), (-3, 1), (1, 2), (-5, 4), (3, 8)] {
            let iv = Iv::from_rat(&r(p, q));
            assert_eq!(iv.lo, iv.hi, "{p}/{q} should be a point interval");
            assert_eq!(iv.lo, p as f64 / q as f64);
        }
    }

    #[test]
    fn non_dyadic_rationals_enclose() {
        let third = Iv::from_rat(&r(1, 3));
        assert!(third.lo < third.hi);
        assert!(third.lo < 1.0 / 3.0 + 1e-18 && third.hi > 1.0 / 3.0 - 1e-18);
        // The enclosure stays tight: one or two ulps wide.
        assert!(third.hi - third.lo < 1e-15);
    }

    #[test]
    fn exact_arithmetic_stays_point() {
        // Integer dot-product style chains never widen.
        let mut acc = Iv::point(0.0);
        for (a, b) in [(3.0, 4.0), (-7.0, 2.0), (5.0, 1.0), (9.0, -1.0)] {
            acc = acc + Iv::point(a) * Iv::point(b);
        }
        assert_eq!(acc, Iv::point(3.0 * 4.0 - 14.0 + 5.0 - 9.0));
    }

    #[test]
    fn exact_zero_is_provable() {
        // d = 1/4 + 1/4 - 1/2 is exactly zero in f64 and must *prove*
        // both signs — the property that keeps degenerate reduced costs
        // inside the interval tier.
        let d = Iv::from_rat(&r(1, 4)) + Iv::from_rat(&r(1, 4)) - Iv::from_rat(&r(1, 2));
        assert_eq!(d, Iv::point(0.0));
        assert!(d.proves_nonneg() && d.proves_nonpos());
        assert!(!d.proves_pos() && !d.proves_neg());
    }

    #[test]
    fn inexact_zero_straddles() {
        // 1/3 + 1/3 - 2/3 is exactly zero but inexact in f64: the
        // enclosure must straddle, proving neither sign strictly.
        let d = Iv::from_rat(&r(1, 3)) + Iv::from_rat(&r(1, 3)) - Iv::from_rat(&r(2, 3));
        assert!(d.lo <= 0.0 && d.hi >= 0.0);
        assert!(!d.proves_pos() && !d.proves_neg());
    }

    #[test]
    fn widening_is_outward() {
        // 0.1 is inexact: repeated accumulation must keep the true value
        // 10 × (1/10) = 1 inside the enclosure.
        let tenth = Iv::from_rat(&r(1, 10));
        let mut acc = Iv::point(0.0);
        for _ in 0..10 {
            acc = acc + tenth;
        }
        assert!(acc.lo <= 1.0 && 1.0 <= acc.hi);
        assert!(acc.lo < acc.hi);
    }

    #[test]
    fn huge_integers_enclose() {
        let big = (1i128 << 80) + 1;
        let iv = Iv::from_i128(big);
        assert!(iv.lo < iv.hi);
        assert!(iv.lo <= big as f64 && big as f64 <= iv.hi);
    }

    #[test]
    fn tiny_gap_straddles() {
        // A 2⁻⁶⁰-style gap around zero: (1 + 2⁻⁶⁰) − 1 is far below one
        // ulp of 1, so the enclosure must straddle zero (escalation
        // territory), never prove strict positivity.
        let gap = r(1, 1).add(&r(1, 1 << 60));
        let d = Iv::from_rat(&gap) - Iv::from_rat(&r(1, 1));
        assert!(!d.proves_pos());
        assert!(d.lo <= 0.0 && d.hi >= 0.0);
    }

    #[test]
    fn nan_collapses_to_entire_line() {
        let inf = Iv {
            lo: f64::INFINITY,
            hi: f64::INFINITY,
        };
        let d = inf - inf; // ∞ − ∞ → NaN → entire line
        assert_eq!(d.lo, f64::NEG_INFINITY);
        assert_eq!(d.hi, f64::INFINITY);
        assert!(!d.proves_nonneg() && !d.proves_nonpos());
    }
}

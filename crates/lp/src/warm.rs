//! Warm-start machinery for the bounded revised simplex: basis
//! **snapshots** extracted from a finished solve and re-installed into a
//! fresh one.
//!
//! # Why warm starts
//!
//! The decomposition layer in `abt-active` turns one big LP1 into
//! thousands of small per-component sub-LPs — and on the instance families
//! the roadmap targets (nested windows, online arrival streams) those
//! components are *near-identical*: same constraint sparsity pattern, same
//! VUB family layout, different right-hand sides. Solving every sibling
//! cold repeats the same pivot sequence over and over. A
//! [`BasisSnapshot`] captures what that work actually bought — the
//! terminal basis column ordering and every column's resting state
//! (including the VUB glue sets implied by [`VarState::AtVub`]) — so a
//! *structurally identical* problem with different data can start at the
//! old optimum and usually needs only a handful of pivots, or none.
//!
//! # Lifecycle
//!
//! 1. **Extract** — [`BasisSnapshot::from_proposal`] clones the
//!    basis/state vectors out of an `Optimal` [`BoundedBasis`] (the float
//!    pass's terminal proposal). [`solve_revised_warm`] does this
//!    automatically and hands the snapshot back in its [`WarmReport`].
//! 2. **Install** — a later [`solve_revised_warm`] call with the snapshot
//!    validates it against the new problem's standard form: shape check,
//!    state consistency, then **one sparse-LU refactorization** of the
//!    (key-column-augmented) basis and an exact-arithmetic-free primal
//!    feasibility check of the recomputed basic values. Any failure —
//!    shape drift, a singular basis for the new data, primal
//!    infeasibility — falls back to the ordinary **cold** two-phase solve.
//!    A warm install that succeeds skips phase 1 entirely (the installed
//!    basis *is* a feasible basis: every basic artificial sits at zero)
//!    and resumes phase-2 pivoting from the old optimum.
//! 3. **Certify** — warm or cold, the terminal basis is re-verified in
//!    exact rationals exactly like [`crate::simplex::solve_revised`], so a
//!    warm answer is **bit-identical** to the cold one: the float search's
//!    starting point can change which alternate optimal vertex is reached,
//!    never the certified status or objective. An unverifiable warm
//!    outcome re-runs cold (and, if need be, falls through to the pure
//!    exact solver) — a warm start can only ever cost a retry, never an
//!    answer.
//!
//! # What "matches" means
//!
//! A snapshot is keyed to the standard-form *shape*: row count `m` and
//! column count `ncols` are prechecked here, and the install step's
//! factorization + feasibility check covers the rest. Callers that batch
//! siblings (the planner in `abt-active::lp_model`) group problems by an
//! exact structural signature first, so installs almost never fail; a
//! caller that hands in a stale snapshot merely pays the cold solve it
//! would have run anyway.

use crate::arena::with_arena;
use crate::bounds::{
    solve_bounded_warm_pooled, BoundedBasis, BoundedStatus, StandardForm, VarState,
};
use crate::model::LpProblem;
use crate::rational::Rat;
use crate::simplex::{
    apply_certify, solve_revised_core_with_sf, to_f64, verify_bounded, Certified, HybridReport,
    RevisedOptions, SolveStats,
};
use abt_core::error::{BudgetKind, SolveFailure};

/// A reusable snapshot of a finished bounded revised solve: the basis
/// column per row, and the resting state of every standard-form column
/// (which encodes the VUB glue sets — a dependent whose state is
/// [`VarState::AtVub`] rides glued to its key). See the module docs for
/// the lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasisSnapshot {
    /// Standard-form row count the snapshot was taken at.
    pub m: usize,
    /// Standard-form column count the snapshot was taken at.
    pub ncols: usize,
    /// Basic column per row (length `m`).
    pub basis: Vec<usize>,
    /// Resting state per standard-form column (length `ncols`).
    pub state: Vec<VarState>,
}

impl BasisSnapshot {
    /// Extracts a snapshot from the float pass's terminal proposal.
    /// Returns `None` unless the proposal is `Optimal` (only an optimal
    /// basis is worth resuming from — `Stalled` proposals carry no basis
    /// at all).
    pub fn from_proposal(prop: &BoundedBasis) -> Option<BasisSnapshot> {
        if prop.status != BoundedStatus::Optimal {
            return None;
        }
        Some(BasisSnapshot {
            m: prop.basis.len(),
            ncols: prop.state.len(),
            basis: prop.basis.clone(),
            state: prop.state.clone(),
        })
    }

    /// Cheap shape precheck against a standard form: row and column counts
    /// must agree. The install step re-validates everything structural
    /// (state consistency, basis regularity, primal feasibility), so this
    /// is a fast-path filter, not a correctness gate.
    pub fn matches_shape<S>(&self, sf: &StandardForm<S>) -> bool {
        self.m == sf.m && self.ncols == sf.ncols
    }

    /// Upper bound on the row/column counts a decoded snapshot may claim —
    /// far above any LP this workspace builds, low enough that a corrupted
    /// size field cannot drive a giant allocation before validation.
    pub const MAX_DECODE_DIM: usize = 1 << 24;

    /// Serializes the snapshot with the `abt-core::persist` codec. The
    /// inverse of [`BasisSnapshot::decode`].
    pub fn encode(&self, enc: &mut abt_core::persist::Enc) {
        enc.put_usize(self.m);
        enc.put_usize(self.ncols);
        debug_assert_eq!(self.basis.len(), self.m);
        for &col in &self.basis {
            enc.put_usize(col);
        }
        debug_assert_eq!(self.state.len(), self.ncols);
        for &st in &self.state {
            enc.put_u8(match st {
                VarState::Basic => 0,
                VarState::AtLower => 1,
                VarState::AtUpper => 2,
                VarState::AtVub => 3,
            });
        }
    }

    /// Deserializes a snapshot, validating every structural invariant the
    /// in-memory type maintains: `basis.len() == m`, `state.len() ==
    /// ncols`, every basis column in range, every state byte a known
    /// variant, both dimensions under [`BasisSnapshot::MAX_DECODE_DIM`].
    /// Anything else is a typed [`abt_core::persist::PersistError`] —
    /// never a panic. (The
    /// install step re-validates against the target problem anyway; this
    /// gate exists so malformed persisted bytes cannot even reach it.)
    pub fn decode(
        dec: &mut abt_core::persist::Dec<'_>,
    ) -> Result<BasisSnapshot, abt_core::persist::PersistError> {
        use abt_core::persist::PersistError;
        let m = dec.usize()?;
        let ncols = dec.usize()?;
        if m > Self::MAX_DECODE_DIM || ncols > Self::MAX_DECODE_DIM {
            return Err(PersistError::Malformed(format!(
                "snapshot dimensions {m}×{ncols} exceed the decode cap"
            )));
        }
        if m > dec.remaining() / 8 {
            return Err(PersistError::Truncated {
                need: m * 8,
                have: dec.remaining(),
            });
        }
        let mut basis = Vec::with_capacity(m);
        for _ in 0..m {
            let col = dec.usize()?;
            if col >= ncols {
                return Err(PersistError::Malformed(format!(
                    "basis column {col} out of range (ncols {ncols})"
                )));
            }
            basis.push(col);
        }
        if ncols > dec.remaining() {
            return Err(PersistError::Truncated {
                need: ncols,
                have: dec.remaining(),
            });
        }
        let mut state = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            state.push(match dec.u8()? {
                0 => VarState::Basic,
                1 => VarState::AtLower,
                2 => VarState::AtUpper,
                3 => VarState::AtVub,
                b => {
                    return Err(PersistError::Malformed(format!(
                        "unknown VarState byte {b}"
                    )))
                }
            });
        }
        Ok(BasisSnapshot {
            m,
            ncols,
            basis,
            state,
        })
    }
}

/// Result of [`solve_revised_warm`]: the exact solution (same contract as
/// [`crate::simplex::solve_revised_report`]) plus the warm-start outcome
/// and a snapshot of the terminal basis for future reuse.
#[derive(Debug, Clone)]
pub struct WarmReport {
    /// The exact solution and solve counters. `fallback` keeps its cold
    /// meaning — `true` only when the *pure exact dense solver* had to
    /// run; a warm miss that re-solved cold (and verified) is not a
    /// fallback.
    pub report: HybridReport,
    /// `true` iff the provided snapshot installed cleanly **and** the
    /// warm-started float pass's terminal basis verified exactly — i.e.
    /// the answer really was produced by the warm path.
    pub warm_hit: bool,
    /// Snapshot of the verified terminal basis (warm or cold), for the
    /// next sibling/re-solve. `None` when the solve fell through to the
    /// exact dense fallback (there is no bounded basis to snapshot).
    pub snapshot: Option<BasisSnapshot>,
}

/// [`crate::simplex::solve_revised_with`] with optional warm starts.
///
/// With an empty `snapshots` slice this is exactly the cold revised
/// solve, plus a snapshot of the terminal basis in the result. Otherwise
/// the float pass tries each candidate snapshot **in order** until one
/// installs and its warm run verifies exactly (see the module docs);
/// different siblings of a family land on different optimal vertices, so
/// a small pool of candidates lifts the hit rate well above what any
/// single snapshot achieves — a failed install costs one sparse LU
/// factorization plus a feasibility sweep, cheap next to the cold pivot
/// sequence it stands in for. On exhausting the pool the cold path runs
/// unchanged. Status and objective are **always bit-identical** to
/// [`crate::simplex::solve`]`::<Rat>`, warm or cold.
#[deprecated(note = "use `solve_lp` with `LpOptions::snapshots`")]
pub fn solve_revised_warm(
    lp: &LpProblem<Rat>,
    opts: &RevisedOptions,
    snapshots: &[BasisSnapshot],
) -> WarmReport {
    // Both standard forms are built at most once per call: the f64 form is
    // shared by every candidate install and handed on to the cold path,
    // and the (expensive) rational form is built lazily on the first
    // candidate that reaches exact verification.
    let sf64 = StandardForm::build(&to_f64(lp));
    let mut sfr: Option<StandardForm<Rat>> = None;
    for snap in snapshots {
        if !snap.matches_shape(&sf64) {
            continue;
        }
        let Some(prop) =
            with_arena(|arena| solve_bounded_warm_pooled(&sf64, &opts.pricing, snap, arena))
        else {
            continue; // install failed: try the next candidate
        };
        if prop.status != BoundedStatus::Optimal {
            continue; // warm run stalled/diverged: try the next
        }
        let sfr = sfr.get_or_insert_with(|| StandardForm::build(lp));
        let certify = std::time::Instant::now();
        // Legacy path: no certifier deadline (see
        // `solve_revised_core_with_sf` for the rationale).
        let (verified, tally) = verify_bounded(lp, sfr, &prop, None, opts.certify);
        let mut stats = SolveStats {
            pivots: prop.pivots,
            bound_flips: prop.bound_flips,
            refactorizations: prop.refactorizations,
            ..SolveStats::default()
        };
        apply_certify(&mut stats, certify.elapsed().as_nanos() as u64, &tally);
        if let Certified::Verified(solution) = verified {
            let snapshot = BasisSnapshot::from_proposal(&prop);
            return WarmReport {
                report: HybridReport {
                    solution,
                    fallback: false,
                    stats,
                },
                warm_hit: true,
                snapshot,
            };
        }
    }
    let (report, prop) = solve_revised_core_with_sf(lp, opts, sf64);
    let snapshot = prop.as_ref().and_then(BasisSnapshot::from_proposal);
    WarmReport {
        report,
        warm_hit: false,
        snapshot,
    }
}

/// The fallible, **warm-only** variant of [`solve_revised_warm`]: tries
/// each candidate snapshot in order, and — unlike the legacy driver —
/// never falls through to a cold solve. This is rung 1 of the supervision
/// ladder in `abt-active`: the supervisor decides what a miss costs.
///
/// * `Ok(report)` — some candidate installed, its warm float run finished
///   `Optimal`, and the terminal basis certified exactly
///   (`report.warm_hit` is always `true` here).
/// * `Err(ShapeDrift)` — no candidate produced a certified answer (empty
///   pool, shape mismatches, failed installs, stalled warm runs, or exact
///   refutations). A routine cache miss, **not** a fault: supervisors
///   drop through to the cold rung without recording a demotion.
/// * `Err(BudgetExceeded(_))` — a budget in `opts.pricing` tripped during
///   a warm run or its certification. Genuine budget pressure: surfaced
///   immediately rather than burning the remaining candidates.
#[deprecated(note = "use `solve_lp` with `LpOptions::snapshots` and `warm_only`")]
pub fn try_solve_revised_warm(
    lp: &LpProblem<Rat>,
    opts: &RevisedOptions,
    snapshots: &[BasisSnapshot],
) -> Result<WarmReport, SolveFailure> {
    try_solve_revised_warm_core(lp, opts, snapshots)
}

/// The warm-only engine behind [`try_solve_revised_warm`] and
/// [`crate::api::solve_lp`]'s warm rung.
pub(crate) fn try_solve_revised_warm_core(
    lp: &LpProblem<Rat>,
    opts: &RevisedOptions,
    snapshots: &[BasisSnapshot],
) -> Result<WarmReport, SolveFailure> {
    let mut span = abt_core::obs_span!("solve.warm", candidates = snapshots.len());
    let sf64 = StandardForm::build(&to_f64(lp));
    let mut sfr: Option<StandardForm<Rat>> = None;
    for snap in snapshots {
        if !snap.matches_shape(&sf64) {
            continue;
        }
        let Some(prop) =
            with_arena(|arena| solve_bounded_warm_pooled(&sf64, &opts.pricing, snap, arena))
        else {
            continue; // install failed: try the next candidate
        };
        match prop.status {
            BoundedStatus::Optimal => {}
            BoundedStatus::Budget(k) => return Err(SolveFailure::BudgetExceeded(k)),
            _ => continue, // warm run stalled/diverged: try the next
        }
        let sfr = sfr.get_or_insert_with(|| StandardForm::build(lp));
        let certify = std::time::Instant::now();
        let (outcome, tally) =
            verify_bounded(lp, sfr, &prop, opts.pricing.stage_deadline(), opts.certify);
        let mut stats = SolveStats {
            pivots: prop.pivots,
            bound_flips: prop.bound_flips,
            refactorizations: prop.refactorizations,
            ..SolveStats::default()
        };
        apply_certify(&mut stats, certify.elapsed().as_nanos() as u64, &tally);
        match outcome {
            Certified::Verified(solution) => {
                span.field("hit", true);
                let snapshot = BasisSnapshot::from_proposal(&prop);
                return Ok(WarmReport {
                    report: HybridReport {
                        solution,
                        fallback: false,
                        stats,
                    },
                    warm_hit: true,
                    snapshot,
                });
            }
            Certified::Deadline => return Err(SolveFailure::BudgetExceeded(BudgetKind::Time)),
            Certified::Refuted => continue, // exact refutation: next candidate
        }
    }
    Err(SolveFailure::ShapeDrift)
}

/// The fallible **cold** revised solve with a snapshot of the terminal
/// basis: exactly [`solve_revised_warm`] with an empty pool, but typed
/// failures instead of silent dense fallbacks — rung 2 of the supervision
/// ladder in `abt-active`. Budgets in `opts.pricing` are enforced in the
/// float pass and the exact certifier; see
/// [`crate::simplex::try_solve_revised_with`] for the failure mapping.
#[deprecated(note = "use `solve_lp` with an empty snapshot pool")]
pub fn try_solve_revised_cold(
    lp: &LpProblem<Rat>,
    opts: &RevisedOptions,
) -> Result<WarmReport, SolveFailure> {
    let (report, prop) = crate::simplex::try_solve_revised_core(lp, opts)?;
    let snapshot = prop.as_ref().and_then(BasisSnapshot::from_proposal);
    Ok(WarmReport {
        report,
        warm_hit: false,
        snapshot,
    })
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the shimmed legacy names stay covered

    use super::*;
    use crate::arena::with_arena;
    use crate::model::{Cmp, LpProblem};
    use crate::simplex::{solve, LpStatus};

    fn r(p: i64, q: i64) -> Rat {
        Rat::new(p as i128, q as i128)
    }

    /// A miniature LP1-shaped component: two super-slot keys with VUB
    /// families, a capacity row per run, demand rows per job. `demands`
    /// and `widths` are the data that vary between "siblings".
    fn lp1_like(demands: [i64; 3], widths: [i64; 2]) -> LpProblem<Rat> {
        let g = r(2, 1);
        let mut lp: LpProblem<Rat> = LpProblem::new();
        let y0 = lp.add_var(Rat::ONE);
        let y1 = lp.add_var(Rat::ONE);
        lp.set_upper(y0, Rat::from_int(widths[0]));
        lp.set_upper(y1, Rat::from_int(widths[1]));
        let x00 = lp.add_var(Rat::ZERO); // job 0 in run 0
        let x01 = lp.add_var(Rat::ZERO); // job 0 in run 1
        let x10 = lp.add_var(Rat::ZERO); // job 1 in run 0
        let x21 = lp.add_var(Rat::ZERO); // job 2 in run 1
        for (x, y) in [(x00, y0), (x01, y1), (x10, y0), (x21, y1)] {
            lp.set_vub(x, y);
        }
        lp.add_constraint(
            vec![(x00, Rat::ONE), (x10, Rat::ONE), (y0, g.neg())],
            Cmp::Le,
            Rat::ZERO,
        );
        lp.add_constraint(
            vec![(x01, Rat::ONE), (x21, Rat::ONE), (y1, g.neg())],
            Cmp::Le,
            Rat::ZERO,
        );
        lp.add_constraint(
            vec![(x00, Rat::ONE), (x01, Rat::ONE)],
            Cmp::Ge,
            Rat::from_int(demands[0]),
        );
        lp.add_constraint(vec![(x10, Rat::ONE)], Cmp::Ge, Rat::from_int(demands[1]));
        lp.add_constraint(vec![(x21, Rat::ONE)], Cmp::Ge, Rat::from_int(demands[2]));
        lp
    }

    #[test]
    fn cold_solve_yields_a_snapshot_and_matches_exact() {
        let lp = lp1_like([3, 2, 1], [3, 2]);
        let out = solve_revised_warm(&lp, &RevisedOptions::default(), &[]);
        assert!(!out.warm_hit);
        assert!(!out.report.fallback);
        assert_eq!(out.report.solution.status, LpStatus::Optimal);
        assert_eq!(out.report.solution.objective, solve(&lp).objective);
        let snap = out.snapshot.expect("optimal cold solve must snapshot");
        assert_eq!(snap.basis.len(), snap.m);
        assert_eq!(snap.state.len(), snap.ncols);
    }

    #[test]
    fn warm_sibling_is_bit_identical_and_cheaper() {
        // Solve one representative cold, then a sibling (same structure,
        // different demands and widths) warm: bit-identical to its own
        // exact solve, with no more pivots than its cold solve needs.
        let rep = lp1_like([3, 2, 1], [3, 2]);
        let cold_rep = solve_revised_warm(&rep, &RevisedOptions::default(), &[]);
        let snap = cold_rep.snapshot.expect("snapshot");

        let sib = lp1_like([4, 2, 2], [4, 3]);
        let cold_sib = solve_revised_warm(&sib, &RevisedOptions::default(), &[]);
        let warm_sib = solve_revised_warm(
            &sib,
            &RevisedOptions::default(),
            std::slice::from_ref(&snap),
        );
        assert!(warm_sib.warm_hit, "structural sibling must install warm");
        assert!(!warm_sib.report.fallback);
        assert_eq!(
            warm_sib.report.solution.objective,
            solve(&sib).objective,
            "warm answers must stay bit-identical to cold/exact"
        );
        assert!(
            warm_sib.report.stats.pivots <= cold_sib.report.stats.pivots,
            "warm start must not pivot more than cold ({} > {})",
            warm_sib.report.stats.pivots,
            cold_sib.report.stats.pivots
        );
        // The warm solve returns its own snapshot for further reuse.
        assert!(warm_sib.snapshot.is_some());
    }

    #[test]
    fn identical_sibling_needs_zero_pivots_warm() {
        let lp = lp1_like([3, 2, 1], [3, 2]);
        let snap = solve_revised_warm(&lp, &RevisedOptions::default(), &[])
            .snapshot
            .unwrap();
        let again =
            solve_revised_warm(&lp, &RevisedOptions::default(), std::slice::from_ref(&snap));
        assert!(again.warm_hit);
        assert_eq!(again.report.stats.pivots, 0, "old optimum is still optimal");
        assert_eq!(again.report.solution.objective, solve(&lp).objective);
    }

    #[test]
    fn snapshot_pool_retries_candidates() {
        // The first candidate's vertex is primal-infeasible for the new
        // data (its glued values undershoot the grown demand), but a
        // second candidate from a closer sibling installs — the pool turns
        // a miss into a zero-pivot hit.
        let far = lp1_like([3, 2, 1], [3, 2]);
        let near = lp1_like([3, 2, 2], [3, 2]);
        let far_snap = solve_revised_warm(&far, &RevisedOptions::default(), &[])
            .snapshot
            .unwrap();
        let near_snap = solve_revised_warm(&near, &RevisedOptions::default(), &[])
            .snapshot
            .unwrap();
        let target = lp1_like([3, 2, 2], [3, 2]);
        let miss = solve_revised_warm(
            &target,
            &RevisedOptions::default(),
            std::slice::from_ref(&far_snap),
        );
        assert!(!miss.warm_hit, "the far snapshot alone must miss");
        let pool = [far_snap, near_snap];
        let hit = solve_revised_warm(&target, &RevisedOptions::default(), &pool);
        assert!(hit.warm_hit, "the pool's second candidate must hit");
        assert_eq!(hit.report.stats.pivots, 0);
        assert_eq!(hit.report.solution.objective, solve(&target).objective);
    }

    #[test]
    fn shape_mismatch_falls_back_to_cold() {
        let lp = lp1_like([3, 2, 1], [3, 2]);
        let snap = solve_revised_warm(&lp, &RevisedOptions::default(), &[])
            .snapshot
            .unwrap();
        // A structurally different problem: extra variable and row.
        let mut other: LpProblem<Rat> = LpProblem::new();
        let x = other.add_var(Rat::ONE);
        let y = other.add_var(Rat::ONE);
        other.add_constraint(vec![(x, Rat::ONE), (y, Rat::ONE)], Cmp::Ge, r(3, 1));
        let out = solve_revised_warm(
            &other,
            &RevisedOptions::default(),
            std::slice::from_ref(&snap),
        );
        assert!(!out.warm_hit, "shape mismatch must not install");
        assert_eq!(out.report.solution.objective, r(3, 1));
    }

    #[test]
    fn infeasible_sibling_detected_through_the_cold_path() {
        // The warm basis cannot be primal-feasible for data that admits no
        // feasible point at all, so the install check fails and the cold
        // two-phase run reports Infeasible exactly.
        let rep = lp1_like([3, 2, 1], [3, 2]);
        let snap = solve_revised_warm(&rep, &RevisedOptions::default(), &[])
            .snapshot
            .unwrap();
        // Demand far beyond the capped capacity g·(w0 + w1) = 2·3 = 6.
        let sib = lp1_like([40, 1, 1], [2, 1]);
        let out = solve_revised_warm(
            &sib,
            &RevisedOptions::default(),
            std::slice::from_ref(&snap),
        );
        assert!(!out.warm_hit);
        assert_eq!(out.report.solution.status, LpStatus::Infeasible);
        assert_eq!(solve(&sib).status, LpStatus::Infeasible);
    }

    #[test]
    fn failed_installs_do_not_leak_arena_buffers() {
        // Satellite: buffers checked out during a failed snapshot install
        // must be returned on the early-exit path. Warm the pool once,
        // then hammer the failing-install path and check that (a) the pool
        // never exceeds its bound and (b) no fresh allocations happen —
        // i.e. every checkout is served by a buffer that was given back.
        let rep = lp1_like([3, 2, 1], [3, 2]);
        let snap = solve_revised_warm(&rep, &RevisedOptions::default(), &[])
            .snapshot
            .unwrap();
        // Same shape, infeasible data: install reaches the primal
        // feasibility check (buffers already checked out) and bails there.
        let bad = lp1_like([40, 1, 1], [2, 1]);
        let _ = solve_revised_warm(
            &bad,
            &RevisedOptions::default(),
            std::slice::from_ref(&snap),
        );
        let before = with_arena(|a| a.stats());
        for _ in 0..10 {
            let out = solve_revised_warm(
                &bad,
                &RevisedOptions::default(),
                std::slice::from_ref(&snap),
            );
            assert!(!out.warm_hit);
        }
        let after = with_arena(|a| a.stats());
        assert!(
            after.pooled_f64 <= crate::arena::MAX_POOLED
                && after.pooled_pairs <= crate::arena::MAX_POOLED,
            "pool high-water must stay bounded"
        );
        let fresh_before = before.checkouts - before.reuses;
        let fresh_after = after.checkouts - after.reuses;
        assert_eq!(
            fresh_before,
            fresh_after,
            "failed installs must recycle every checked-out buffer \
             (fresh allocations grew by {})",
            fresh_after - fresh_before
        );
    }

    #[test]
    fn try_warm_is_warm_only() {
        let lp = lp1_like([3, 2, 1], [3, 2]);
        // An empty pool is a routine miss — ShapeDrift, not a solve.
        assert_eq!(
            try_solve_revised_warm(&lp, &RevisedOptions::default(), &[]).unwrap_err(),
            SolveFailure::ShapeDrift
        );
        let snap = solve_revised_warm(&lp, &RevisedOptions::default(), &[])
            .snapshot
            .unwrap();
        let out =
            try_solve_revised_warm(&lp, &RevisedOptions::default(), std::slice::from_ref(&snap))
                .expect("matching snapshot must hit");
        assert!(out.warm_hit);
        assert_eq!(out.report.solution.objective, solve(&lp).objective);
        // A shape-mismatched pool is also just a miss.
        let mut other: LpProblem<Rat> = LpProblem::new();
        let x = other.add_var(Rat::ONE);
        other.add_constraint(vec![(x, Rat::ONE)], Cmp::Ge, r(3, 1));
        let snap2 = out.snapshot.unwrap();
        assert_eq!(
            try_solve_revised_warm(
                &other,
                &RevisedOptions::default(),
                std::slice::from_ref(&snap2)
            )
            .unwrap_err(),
            SolveFailure::ShapeDrift
        );
    }

    #[test]
    fn try_cold_solves_and_snapshots() {
        let lp = lp1_like([3, 2, 1], [3, 2]);
        let out = try_solve_revised_cold(&lp, &RevisedOptions::default()).expect("clean cold");
        assert!(!out.warm_hit);
        assert_eq!(out.report.solution.objective, solve(&lp).objective);
        let snap = out.snapshot.expect("optimal cold solve must snapshot");
        // The snapshot round-trips into a warm hit.
        let warm =
            try_solve_revised_warm(&lp, &RevisedOptions::default(), std::slice::from_ref(&snap))
                .expect("own snapshot must hit");
        assert!(warm.warm_hit);
        // Budgets are enforced, not ignored.
        let tight = RevisedOptions {
            pricing: crate::bounds::BoundedOptions {
                pivot_budget: 1,
                ..crate::bounds::BoundedOptions::default()
            },
            ..RevisedOptions::default()
        };
        assert_eq!(
            try_solve_revised_cold(&lp, &tight).unwrap_err(),
            SolveFailure::BudgetExceeded(BudgetKind::Pivots)
        );
    }

    #[test]
    fn from_proposal_rejects_non_optimal() {
        let prop = BoundedBasis {
            status: BoundedStatus::Stalled,
            basis: Vec::new(),
            state: Vec::new(),
            pivots: 0,
            bound_flips: 0,
            refactorizations: 0,
        };
        assert!(BasisSnapshot::from_proposal(&prop).is_none());
    }

    #[test]
    fn snapshot_codec_roundtrip_is_identity() {
        use abt_core::persist::{Dec, Enc};
        // A real snapshot off a real solve, not a synthetic one.
        let lp = lp1_like([3, 2, 1], [3, 2]);
        let snap = solve_revised_warm(&lp, &RevisedOptions::default(), &[])
            .snapshot
            .expect("optimal solve must snapshot");
        let mut enc = Enc::new();
        snap.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let back = BasisSnapshot::decode(&mut dec).expect("own bytes must decode");
        dec.finish().expect("no trailing bytes");
        assert_eq!(back, snap);
        // And the decoded snapshot still warm-hits its own problem.
        let out =
            try_solve_revised_warm(&lp, &RevisedOptions::default(), std::slice::from_ref(&back))
                .expect("decoded snapshot must hit");
        assert!(out.warm_hit);
    }

    #[test]
    fn snapshot_decode_rejects_drift_without_panicking() {
        use abt_core::persist::{Dec, Enc, PersistError};
        let snap = BasisSnapshot {
            m: 2,
            ncols: 3,
            basis: vec![0, 2],
            state: vec![VarState::Basic, VarState::AtLower, VarState::Basic],
        };
        let mut enc = Enc::new();
        snap.encode(&mut enc);
        let bytes = enc.into_bytes();
        // Every truncation point is a typed error, never a panic.
        for cut in 0..bytes.len() {
            assert!(BasisSnapshot::decode(&mut Dec::new(&bytes[..cut])).is_err());
        }
        // A basis column past ncols is malformed.
        let mut bad = bytes.clone();
        bad[16] = 9; // first basis entry: 9 ≥ ncols 3
        assert!(matches!(
            BasisSnapshot::decode(&mut Dec::new(&bad)),
            Err(PersistError::Malformed(_))
        ));
        // An unknown VarState byte is malformed.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] = 7;
        assert!(matches!(
            BasisSnapshot::decode(&mut Dec::new(&bad)),
            Err(PersistError::Malformed(_))
        ));
        // An absurd dimension field is capped before any allocation.
        let mut enc = Enc::new();
        enc.put_usize(usize::MAX / 2);
        enc.put_usize(3);
        assert!(BasisSnapshot::decode(&mut Dec::new(&enc.into_bytes())).is_err());
    }
}

//! A reusable slab arena for solver scratch space.
//!
//! The revised simplex allocates the same handful of buffer shapes on
//! every solve: dense `f64` work vectors of length `m` (entering columns,
//! right-hand sides, basic values) and sparse `(row, value)` pair lists
//! (product-form eta columns). On one big LP that cost is noise; on a
//! thread solving *thousands of small component LPs* — the shape the
//! decomposition layer in `abt-active` produces, and exactly the pattern
//! named open on the roadmap — the constant malloc/free churn against the
//! global allocator dominates the useful arithmetic.
//!
//! [`SolveArena`] is a bump-style slab pool: buffers are **checked out**
//! per solve ([`SolveArena::take_f64`] / [`SolveArena::take_pairs`]),
//! **reset, not freed** when given back ([`SolveArena::give_f64`] /
//! [`SolveArena::give_pairs`]), so their capacity survives to the next
//! solve on the same thread. One arena lives per thread
//! (thread-local, reached through [`with_arena`]); the pool is bounded
//! ([`MAX_POOLED`] buffers per shape) so a pathological solve cannot pin
//! unbounded memory.
//!
//! The arena holds `f64` scratch only: the exact-rational verification
//! pass allocates `Rat` vectors whose drop glue is trivial, and its cost
//! is dominated by the arithmetic, not the allocator.

use std::cell::RefCell;

/// Upper bound on pooled buffers per shape. Beyond this, `give_*` simply
/// drops the buffer — the pool never grows without bound.
pub const MAX_POOLED: usize = 64;

/// Usage counters of a [`SolveArena`] (see [`SolveArena::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers handed out by `take_*`.
    pub checkouts: u64,
    /// Checkouts served from the pool (no fresh allocation).
    pub reuses: u64,
    /// `f64` buffers currently resting in the pool.
    pub pooled_f64: usize,
    /// Pair buffers currently resting in the pool.
    pub pooled_pairs: usize,
}

/// A per-thread slab pool of solver scratch buffers. See the module docs.
#[derive(Debug, Default)]
pub struct SolveArena {
    f64_bufs: Vec<Vec<f64>>,
    pair_bufs: Vec<Vec<(usize, f64)>>,
    checkouts: u64,
    reuses: u64,
}

impl SolveArena {
    /// An empty arena (no pooled buffers yet).
    pub fn new() -> SolveArena {
        SolveArena::default()
    }

    /// Checks out a dense `f64` buffer of length `len`, every entry set to
    /// `fill`. Reuses pooled capacity when available.
    pub fn take_f64(&mut self, len: usize, fill: f64) -> Vec<f64> {
        self.checkouts += 1;
        match self.f64_bufs.pop() {
            Some(mut v) => {
                self.reuses += 1;
                v.clear();
                v.resize(len, fill);
                v
            }
            None => vec![fill; len],
        }
    }

    /// Returns a dense buffer to the pool (dropped if the pool is full).
    pub fn give_f64(&mut self, v: Vec<f64>) {
        if self.f64_bufs.len() < MAX_POOLED && v.capacity() > 0 {
            self.f64_bufs.push(v);
        }
    }

    /// Checks out an empty sparse `(row, value)` pair buffer.
    pub fn take_pairs(&mut self) -> Vec<(usize, f64)> {
        self.checkouts += 1;
        match self.pair_bufs.pop() {
            Some(mut v) => {
                self.reuses += 1;
                v.clear();
                v
            }
            None => Vec::new(),
        }
    }

    /// Returns a pair buffer to the pool (dropped if the pool is full).
    pub fn give_pairs(&mut self, v: Vec<(usize, f64)>) {
        if self.pair_bufs.len() < MAX_POOLED && v.capacity() > 0 {
            self.pair_bufs.push(v);
        }
    }

    /// Usage counters (for tests and diagnostics).
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            checkouts: self.checkouts,
            reuses: self.reuses,
            pooled_f64: self.f64_bufs.len(),
            pooled_pairs: self.pair_bufs.len(),
        }
    }
}

thread_local! {
    static ARENA: RefCell<SolveArena> = RefCell::new(SolveArena::new());
}

/// Runs `f` against this thread's [`SolveArena`]. Buffers given back
/// inside `f` stay pooled for the thread's next solve — the reuse that
/// makes thousands of small component solves allocator-quiet.
///
/// Re-entrant calls (an arena user invoked from inside another arena
/// user's closure) get a fresh scratch arena instead of the thread-local
/// one, so nesting is always safe, merely unpooled.
pub fn with_arena<R>(f: impl FnOnce(&mut SolveArena) -> R) -> R {
    ARENA.with(|cell| match cell.try_borrow_mut() {
        Ok(mut arena) => f(&mut arena),
        Err(_) => f(&mut SolveArena::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_roundtrip_reuses_capacity() {
        let mut a = SolveArena::new();
        let mut v = a.take_f64(8, 0.0);
        assert_eq!(v, vec![0.0; 8]);
        v.reserve(100);
        let cap = v.capacity();
        a.give_f64(v);
        // The next checkout must come from the pool with capacity intact,
        // resized and refilled.
        let v2 = a.take_f64(4, 1.5);
        assert_eq!(v2, vec![1.5; 4]);
        assert!(v2.capacity() >= cap);
        let s = a.stats();
        assert_eq!(s.checkouts, 2);
        assert_eq!(s.reuses, 1);
        assert_eq!(s.pooled_f64, 0);
    }

    #[test]
    fn pair_buffers_come_back_empty() {
        let mut a = SolveArena::new();
        let mut p = a.take_pairs();
        p.push((3, 1.0));
        p.push((7, -2.0));
        a.give_pairs(p);
        let p2 = a.take_pairs();
        assert!(p2.is_empty());
        assert!(p2.capacity() >= 2);
        assert_eq!(a.stats().reuses, 1);
    }

    #[test]
    fn pool_is_bounded() {
        let mut a = SolveArena::new();
        for _ in 0..(2 * MAX_POOLED) {
            a.give_f64(vec![0.0; 4]);
        }
        assert_eq!(a.stats().pooled_f64, MAX_POOLED);
        // Zero-capacity buffers are never pooled.
        let mut b = SolveArena::new();
        b.give_pairs(Vec::new());
        assert_eq!(b.stats().pooled_pairs, 0);
    }

    #[test]
    fn with_arena_pools_across_calls_and_tolerates_nesting() {
        // Seed the thread-local pool…
        with_arena(|a| {
            let v = a.take_f64(16, 0.0);
            a.give_f64(v);
        });
        // …and observe the reuse on the *next* checkout from this thread.
        let reused = with_arena(|a| {
            let before = a.stats().reuses;
            let v = a.take_f64(16, 0.0);
            let reused = a.stats().reuses > before;
            a.give_f64(v);
            reused
        });
        assert!(reused, "second with_arena call must hit the pool");
        // Nested entry gets a scratch arena rather than panicking.
        with_arena(|outer| {
            let v = outer.take_f64(4, 0.0);
            let nested_pool = with_arena(|inner| inner.stats().pooled_f64);
            assert_eq!(nested_pool, 0, "nested arena is fresh scratch");
            outer.give_f64(v);
        });
    }

    #[test]
    fn separate_threads_have_separate_pools() {
        with_arena(|a| {
            let v = a.take_f64(32, 0.0);
            a.give_f64(v);
        });
        // A new thread starts with an empty pool: its first checkout is a
        // fresh allocation, never a reuse of this thread's buffer.
        std::thread::spawn(|| {
            with_arena(|a| {
                assert_eq!(a.stats().reuses, 0);
                let v = a.take_f64(32, 0.0);
                assert_eq!(a.stats().reuses, 0);
                a.give_f64(v);
            });
        })
        .join()
        .unwrap();
    }
}

//! Theorem-level proptests for the busy-time LP relaxation.
//!
//! Two claims from the paper's LP-rounding analysis, checked in exact
//! rational arithmetic on every generated instance:
//!
//! 1. the LP objective is a valid lower bound on the exact busy-time
//!    optimum (it relaxes the bundling into fractional machine counts);
//! 2. the rounded schedule costs at most 4× the LP value — ⌈z⌉ ≤ 2z on
//!    z ≥ 1 composed with the 2× level/band packing bound.
//!
//! On larger instances where exact search is out of reach, every
//! heuristic's cost still upper-bounds the LP objective.

use abt_busy::{exact_busy_time, lp_rounding_run, IntervalAlgo};
use abt_core::{within_factor, Instance, Job};
use abt_lp::Rat;
use proptest::prelude::*;

fn interval_jobs(max_n: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..16, 1i64..6), 1..max_n)
}

fn build(jobs: &[(i64, i64)], g: usize) -> Instance {
    let jobs = jobs.iter().map(|&(r, p)| Job::interval(r, r + p)).collect();
    Instance::new(jobs, g).expect("generated jobs are valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lp_objective_lower_bounds_exact(jobs in interval_jobs(8), g in 1usize..5) {
        let inst = build(&jobs, g);
        let run = lp_rounding_run(&inst).unwrap();
        let exact = exact_busy_time(&inst, Some(20_000_000)).unwrap();
        prop_assert!(
            run.lp_objective <= Rat::from_int(exact.cost),
            "LP objective {:?} exceeds exact optimum {}",
            run.lp_objective,
            exact.cost
        );
        prop_assert!(run.cost >= exact.cost);
    }

    #[test]
    fn rounding_stays_within_four_times_lp(jobs in interval_jobs(12), g in 1usize..6) {
        let inst = build(&jobs, g);
        let run = lp_rounding_run(&inst).unwrap();
        prop_assert!(
            run.within_four_lp(),
            "rounded cost {} exceeds 4× LP objective {:?}",
            run.cost,
            run.lp_objective
        );
        // The sharper intermediate bound the 4× factors through.
        prop_assert!(within_factor(run.cost, 2, run.rounded_profile));
    }

    #[test]
    fn lp_objective_lower_bounds_every_heuristic(
        jobs in proptest::collection::vec((0i64..48, 1i64..10), 20..36),
        g in 1usize..5,
    ) {
        let inst = build(&jobs, g);
        let run = lp_rounding_run(&inst).unwrap();
        for algo in IntervalAlgo::all() {
            let cost = algo.run(&inst).unwrap().total_busy_time(&inst);
            prop_assert!(
                run.lp_objective <= Rat::from_int(cost),
                "LP objective {:?} exceeds {}'s cost {cost}",
                run.lp_objective,
                algo.name()
            );
        }
    }
}

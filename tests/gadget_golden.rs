//! Golden tests: the closed-form quantities of every paper gadget, exactly
//! as the paper states them, across a parameter grid.

use abt_core::{within_frac_factor, DemandProfile, Frac};
use abt_workloads::{
    fig10_flexible_factor4, fig3_minimal_tight, fig6_greedy_tracking_tight, fig8_interval_tight,
    fig9_dp_profile_tight, integrality_gap, SCALE,
};

#[test]
fn fig3_closed_forms() {
    for g in 3..=12usize {
        let f = fig3_minimal_tight(g);
        let gi = g as i64;
        // Mass is exactly g² (the paper's optimality argument divides by g).
        assert_eq!(f.instance.total_length(), gi * gi);
        assert_eq!(f.opt, gi);
        assert_eq!(f.adversarial_slots.len() as i64, 3 * gi - 2);
        // Job census: 2 long + (g−2) rigid + 2(g−2) unit.
        assert_eq!(f.instance.len(), 2 + (g - 2) + 2 * (g - 2));
    }
}

#[test]
fn integrality_gap_closed_forms() {
    for g in 2..=16usize {
        let ig = integrality_gap(g);
        let gi = g as i64;
        assert_eq!(ig.lp_opt, gi + 1);
        assert_eq!(ig.ip_opt, 2 * gi);
        assert_eq!(ig.instance.len(), g * (g + 1));
        // The gap 2g/(g+1) is increasing in g and below 2.
        assert!(within_frac_factor(ig.ip_opt, 2, 1, ig.lp_opt));
        assert!(Frac::ratio(ig.ip_opt, ig.lp_opt) < Frac::int(2));
        if g >= 3 {
            let prev = integrality_gap(g - 1);
            assert!(
                Frac::ratio(ig.ip_opt, ig.lp_opt) > Frac::ratio(prev.ip_opt, prev.lp_opt),
                "gap must increase with g"
            );
        }
    }
}

#[test]
fn fig6_closed_forms() {
    for g in 1..=8usize {
        let eps = 10;
        let f = fig6_greedy_tracking_tight(g, eps);
        let gi = g as i64;
        // 2g² unit interval jobs + 2g flexible jobs.
        assert_eq!(f.instance.len(), 2 * g * g + 2 * g);
        // Paper (scaled): bad = 3g(2U − ε), OPT ≤ 2gU + 2U − ε.
        assert_eq!(f.adversarial_cost, 3 * gi * (2 * SCALE - eps));
        assert_eq!(f.opt_upper, 2 * gi * SCALE + 2 * SCALE - eps);
        // Ratio below 3, increasing in g.
        assert!(Frac::ratio(f.adversarial_cost, f.opt_upper) < Frac::int(3));
    }
}

#[test]
fn fig8_closed_forms() {
    for (eps, eps1) in [(100i64, 30i64), (50, 10), (8, 3)] {
        let f = fig8_interval_tight(eps, eps1);
        assert_eq!(f.instance.len(), 5);
        assert_eq!(f.instance.g(), 2);
        assert_eq!(f.opt, SCALE + eps);
        assert_eq!(f.bad_output, 2 * SCALE + eps + eps1);
        // bad/opt < 2 always, → 2 as ε → 0.
        assert!(Frac::ratio(f.bad_output, f.opt) < Frac::int(2));
    }
}

#[test]
fn fig9_profile_ratio_increases_towards_two() {
    let mut prev: Option<Frac> = None;
    for g in 2..=8usize {
        let f = fig9_dp_profile_tight(g, 4);
        let adv = f.instance.fix_starts(&f.adversarial_starts).unwrap();
        let fri = f.instance.fix_starts(&f.friendly_starts).unwrap();
        let profile = |inst: &abt_core::Instance| -> i64 {
            DemandProfile::new(&inst.jobs().iter().map(|j| j.window()).collect::<Vec<_>>()).cost(g)
        };
        let ratio = Frac::ratio(profile(&adv), profile(&fri));
        assert!(ratio < Frac::int(2), "Lemma 7: at most 2");
        if let Some(p) = prev {
            assert!(ratio > p, "ratio must increase with g");
        }
        prev = Some(ratio);
    }
}

#[test]
fn fig10_closed_forms() {
    for g in 3..=8usize {
        let (eps, eps1) = (60, 20);
        let f = fig10_flexible_factor4(g, eps, eps1);
        let gi = g as i64;
        assert_eq!(f.opt_upper, gi * SCALE + (gi - 1) * 2 * eps);
        assert_eq!(f.bad_cost, SCALE + (gi - 1) * (4 * SCALE + 3 * eps));
        assert!(Frac::ratio(f.bad_cost, f.opt_upper) < Frac::int(4));
        // Job census: 1 + (g−1)(g + 2g−2 + 2 + 2) + (g−1) flexible.
        assert_eq!(f.instance.len(), 1 + (g - 1) * (3 * g + 2) + (g - 1));
    }
}

//! Property-based invariants spanning the whole workspace, driven by
//! arbitrary instances rather than fixed seeds.

use abt_active::{lp_rounding, minimal_feasible, solve_active_lp, ClosingOrder};
use abt_busy::{preemptive_bounded, preemptive_lower_bound, solve_flexible, IntervalAlgo};
use abt_core::{busy_lower_bounds, within_factor, Instance, Job};
use abt_lp::Rat;
use proptest::prelude::*;

/// Arbitrary small job list: (release, length, slack) triples.
fn jobs_strategy(max_n: usize) -> impl Strategy<Value = Vec<(i64, i64, i64)>> {
    proptest::collection::vec((0i64..12, 1i64..5, 0i64..6), 1..max_n)
}

fn build(jobs: &[(i64, i64, i64)], g: usize) -> Instance {
    Instance::new(
        jobs.iter()
            .map(|&(r, p, s)| Job::new(r, r + p + s, p))
            .collect(),
        g,
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn busy_algorithms_validate_and_bound(jobs in jobs_strategy(12), g in 1usize..4) {
        let inst = build(&jobs, g);
        let lb = busy_lower_bounds(&inst).mass;
        for algo in IntervalAlgo::all() {
            let out = solve_flexible(&inst, algo).unwrap();
            prop_assert!(out.schedule.validate(&inst).is_ok());
            let cost = out.schedule.total_busy_time(&inst);
            let base = lb.max(out.placement.cost);
            let factor = match algo {
                IntervalAlgo::FirstFit => 4,
                IntervalAlgo::GreedyTracking => 3,
                // 2× holds against the *placed* profile; vs OPT∞ the
                // pipeline guarantee is 4 (Theorem 10).
                _ => 4,
            };
            prop_assert!(
                within_factor(cost, factor, base),
                "{} cost {} > {}×{}", algo.name(), cost, factor, base
            );
        }
    }

    #[test]
    fn active_rounding_certificate(jobs in jobs_strategy(8), g in 1usize..4) {
        let inst = build(&jobs, g);
        // Tightly packed random windows may admit no schedule at all.
        let Ok(lp) = solve_active_lp(&inst) else {
            return Ok(());
        };
        // LP lower bound sanity: at least mass/g.
        let mass = inst.total_length();
        prop_assert!(lp.objective.mul(&Rat::from_int(g as i64)) >= Rat::from_int(mass)
            || lp.objective >= Rat::from_int(mass / g as i64));
        let out = lp_rounding(&inst).unwrap();
        prop_assert!(out.schedule.validate(&inst).is_ok());
        prop_assert!(out.within_two_lp(), "cost {} > 2×LP {}", out.cost, out.lp_objective);
        prop_assert_eq!(out.anomalies, 0);
        prop_assert_eq!(out.repair_slots, 0);
    }

    #[test]
    fn minimal_is_minimal_and_feasible(jobs in jobs_strategy(8), g in 1usize..4, seed in 0u64..8) {
        let inst = build(&jobs, g);
        let Ok(res) = minimal_feasible(&inst, ClosingOrder::Shuffled(seed)) else {
            return Ok(()); // infeasible instance
        };
        prop_assert!(res.schedule.validate(&inst).is_ok());
        prop_assert!(abt_active::is_minimal(&inst, &res.slots));
        // Rounding is never worse than 2/3 relative to minimal... no such
        // claim holds pointwise; but both are ≥ the LP bound.
        let lp = solve_active_lp(&inst).unwrap();
        prop_assert!(Rat::from_int(res.slots.len() as i64) >= lp.objective);
    }

    #[test]
    fn preemptive_two_approx(jobs in jobs_strategy(10), g in 1usize..5) {
        let inst = build(&jobs, g);
        let sched = preemptive_bounded(&inst);
        prop_assert!(sched.validate(&inst).is_ok());
        prop_assert!(within_factor(
            sched.total_busy_time(),
            2,
            preemptive_lower_bound(&inst)
        ));
    }
}

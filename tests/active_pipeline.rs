//! Cross-crate integration tests for the active-time pipeline:
//! workloads → LP → right-shift → rounding → validation, with the
//! theorem-level guarantees checked end to end.

use abt_active::{
    exact_active_time, exact_unit_active_time, is_minimal, lp_rounding, minimal_feasible,
    solve_active_lp, ClosingOrder,
};
use abt_core::{active_lower_bound, within_factor, Instance};
use abt_lp::Rat;
use abt_workloads::{fig3_minimal_tight, integrality_gap, random_active_feasible, RandomConfig};

#[test]
fn theorem1_and_2_on_random_families() {
    for seed in 0..8u64 {
        let cfg = RandomConfig {
            n: 9,
            g: 2,
            horizon: 15,
            max_len: 4,
            slack_factor: 1.0,
        };
        let inst = random_active_feasible(&cfg, seed);
        let exact = exact_active_time(&inst, Some(30_000_000)).unwrap();
        let opt = exact.slots.len() as i64;
        assert!(opt >= active_lower_bound(&inst));

        // Theorem 1: every minimal feasible solution ≤ 3·OPT.
        for order in [
            ClosingOrder::LeftToRight,
            ClosingOrder::RightToLeft,
            ClosingOrder::OutsideIn,
            ClosingOrder::CenterOut,
            ClosingOrder::Shuffled(seed),
        ] {
            let res = minimal_feasible(&inst, order).unwrap();
            res.schedule.validate(&inst).unwrap();
            assert!(is_minimal(&inst, &res.slots));
            assert!(
                within_factor(res.slots.len() as i64, 3, opt),
                "minimal > 3·OPT"
            );
        }

        // Theorem 2: rounding ≤ 2·LP ≤ 2·OPT, with LP ≤ OPT.
        let lp = solve_active_lp(&inst).unwrap();
        assert!(
            lp.objective <= Rat::from_int(opt),
            "LP must lower-bound OPT"
        );
        let rounded = lp_rounding(&inst).unwrap();
        rounded.schedule.validate(&inst).unwrap();
        assert!(rounded.within_two_lp());
        assert!(within_factor(rounded.cost, 2, opt));
        assert_eq!(rounded.anomalies, 0);
        assert_eq!(rounded.repair_slots, 0);
    }
}

#[test]
fn fig3_gadget_end_to_end() {
    for g in [3usize, 4, 5] {
        let f = fig3_minimal_tight(g);
        // OPT is exactly g (mass bound meets an explicit schedule).
        let exact = exact_active_time(&f.instance, Some(80_000_000)).unwrap();
        assert_eq!(exact.slots.len() as i64, f.opt, "g={g}");
        // Some closing order realizes the 3g−2 minimal solution.
        let mut worst = 0usize;
        for order in [
            ClosingOrder::LeftToRight,
            ClosingOrder::RightToLeft,
            ClosingOrder::OutsideIn,
            ClosingOrder::CenterOut,
        ] {
            worst = worst.max(minimal_feasible(&f.instance, order).unwrap().slots.len());
        }
        assert_eq!(worst as i64, 3 * g as i64 - 2, "g={g}");
        // Rounding stays within 2·OPT even here.
        let rounded = lp_rounding(&f.instance).unwrap();
        assert!(within_factor(rounded.cost, 2, f.opt));
    }
}

#[test]
fn integrality_gap_lp_values() {
    for g in [2usize, 3, 4, 6] {
        let ig = integrality_gap(g);
        let lp = solve_active_lp(&ig.instance).unwrap();
        assert_eq!(lp.objective, Rat::from_int(ig.lp_opt), "LP = g+1 exactly");
        let rounded = lp_rounding(&ig.instance).unwrap();
        rounded.schedule.validate(&ig.instance).unwrap();
        // Rounding cannot beat the integral optimum 2g, and must stay ≤ 2·LP.
        assert!(rounded.cost >= ig.ip_opt);
        assert!(rounded.within_two_lp());
    }
}

#[test]
fn unit_jobs_agree_across_solvers() {
    for seed in 0..6u64 {
        let cfg = RandomConfig {
            n: 10,
            g: 2,
            horizon: 12,
            max_len: 4,
            slack_factor: 1.0,
        };
        let mut triples = Vec::new();
        let base = random_active_feasible(&cfg, seed);
        for j in base.jobs() {
            triples.push((j.release, j.deadline, 1));
        }
        let inst = Instance::from_triples(triples, 2).unwrap();
        let unit = exact_unit_active_time(&inst).unwrap();
        let bnb = exact_active_time(&inst, Some(30_000_000)).unwrap();
        assert_eq!(unit.slots.len(), bnb.slots.len());
        let rounded = lp_rounding(&inst).unwrap();
        assert!(within_factor(rounded.cost, 2, unit.slots.len() as i64));
    }
}

//! Differential proptests over the busy-time algorithm zoo.
//!
//! Small instances pin every algorithm — the four combinatorial
//! heuristics plus LP rounding — against the exact branch-and-bound
//! optimum: each output must validate, cost at least the optimum, and
//! stay within its proven factor. Large instances, where exact search
//! is out of reach, cross-check the heuristics pairwise: any
//! algorithm's cost is at most its factor times *any other* algorithm's
//! cost, because the latter is itself an upper bound on OPT.

use abt_busy::{exact_busy_time, IntervalAlgo};
use abt_core::{busy_lower_bounds, within_factor, Instance, Job};
use proptest::prelude::*;

fn interval_jobs(max_n: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..16, 1i64..6), 1..max_n)
}

fn large_interval_jobs() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((0i64..64, 1i64..12), 30..50)
}

fn build(jobs: &[(i64, i64)], g: usize) -> Instance {
    let jobs = jobs.iter().map(|&(r, p)| Job::interval(r, r + p)).collect();
    Instance::new(jobs, g).expect("generated jobs are valid")
}

fn proven_factor(algo: IntervalAlgo) -> i64 {
    match algo {
        IntervalAlgo::FirstFit => 4,
        IntervalAlgo::GreedyTracking => 3,
        _ => 2,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn zoo_within_factor_of_exact_on_small_instances(
        jobs in interval_jobs(8),
        g in 1usize..5,
    ) {
        let inst = build(&jobs, g);
        let exact = exact_busy_time(&inst, Some(20_000_000)).unwrap();
        for algo in IntervalAlgo::all() {
            let schedule = algo.run(&inst).unwrap();
            prop_assert!(schedule.validate(&inst).is_ok());
            let cost = schedule.total_busy_time(&inst);
            prop_assert!(cost >= exact.cost, "{} beat the optimum", algo.name());
            let factor = proven_factor(algo);
            prop_assert!(
                within_factor(cost, factor, exact.cost),
                "{} cost {cost} > {factor}×OPT {}",
                algo.name(),
                exact.cost
            );
        }
    }

    #[test]
    fn zoo_pairwise_cross_checks_on_large_instances(
        jobs in large_interval_jobs(),
        g in 1usize..5,
    ) {
        let inst = build(&jobs, g);
        let lb = busy_lower_bounds(&inst).best();
        let costs: Vec<(IntervalAlgo, i64)> = IntervalAlgo::all()
            .into_iter()
            .map(|algo| {
                let schedule = algo.run(&inst).unwrap();
                schedule.validate(&inst).expect("every output validates");
                (algo, schedule.total_busy_time(&inst))
            })
            .collect();
        for &(algo, cost) in &costs {
            prop_assert!(cost >= lb, "{} undercut the lower bound", algo.name());
        }
        // cost_a ≤ f_a·OPT and cost_b ≥ OPT, so cost_a ≤ f_a·cost_b for
        // every ordered pair — a differential check that needs no OPT.
        for &(a, cost_a) in &costs {
            let fa = proven_factor(a);
            for &(b, cost_b) in &costs {
                prop_assert!(
                    within_factor(cost_a, fa, cost_b),
                    "{} cost {cost_a} > {fa}× {}'s cost {cost_b}",
                    a.name(),
                    b.name()
                );
            }
        }
    }
}

//! Cross-crate integration tests for the busy-time pipeline: all four
//! interval algorithms plus the flexible placement step, with theorem-level
//! factor checks against the exact solver and the paper's gadgets.

use abt_busy::{
    exact_busy_time, placement_from_starts, preemptive_bounded, preemptive_lower_bound,
    preemptive_unbounded, solve_flexible, solve_with_placement, span_exact, validate_unbounded,
    IntervalAlgo,
};
use abt_core::{busy_lower_bounds, within_factor};
use abt_workloads::{
    fig10_flexible_factor4, fig1_example, fig6_greedy_tracking_tight, fig8_interval_tight,
    optical_trace, random_interval, vm_trace, OpticalTraceConfig, RandomConfig, VmTraceConfig,
};

#[test]
fn interval_algorithms_respect_their_factors_vs_exact() {
    // Sweep the machine capacity, not just g = 2: the level/band packing,
    // the LP's ⌈D/g⌉ bounds, and the exact solver's branching all change
    // shape with g. Keep n small enough that the exact B&B stays fast.
    for g in [1usize, 2, 4, 8] {
        let n = if g >= 4 { 8 } else { 9 };
        for seed in 0..6u64 {
            let cfg = RandomConfig {
                n,
                g,
                horizon: 30,
                max_len: 8,
                slack_factor: 0.0,
            };
            let inst = random_interval(&cfg, seed);
            let exact = exact_busy_time(&inst, Some(20_000_000)).unwrap();
            for algo in IntervalAlgo::all() {
                let out = solve_flexible(&inst, algo).unwrap();
                out.schedule.validate(&inst).unwrap();
                let cost = out.schedule.total_busy_time(&inst);
                let factor = match algo {
                    IntervalAlgo::FirstFit => 4,
                    IntervalAlgo::GreedyTracking => 3,
                    _ => 2,
                };
                assert!(
                    within_factor(cost, factor, exact.cost),
                    "{} cost {cost} > {factor}×OPT {} (g {g}, seed {seed})",
                    algo.name(),
                    exact.cost
                );
                assert!(cost >= exact.cost);
            }
        }
    }
}

#[test]
fn fig8_gadget_every_algorithm_within_factor() {
    // Fig. 8 is the tightness gadget for the 2-approximations; pin the
    // whole zoo (LP rounding included) against its known optimum.
    let f = fig8_interval_tight(50, 10);
    let exact = exact_busy_time(&f.instance, None).unwrap();
    assert_eq!(exact.cost, f.opt);
    for algo in IntervalAlgo::all() {
        let s = algo.run(&f.instance).unwrap();
        s.validate(&f.instance).unwrap();
        let cost = s.total_busy_time(&f.instance);
        let factor = match algo {
            IntervalAlgo::FirstFit => 4,
            IntervalAlgo::GreedyTracking => 3,
            _ => 2,
        };
        assert!(
            within_factor(cost, factor, exact.cost),
            "{} cost {cost} > {factor}×OPT {}",
            algo.name(),
            exact.cost
        );
        assert!(cost >= exact.cost);
    }
}

#[test]
fn fig12_bundling_gadget_every_algorithm_within_factor() {
    // Fig. 12 is the adversarial bundling of the Fig. 10 flexible gadget
    // (`bad_schedule`): a valid possible KR/AB output exceeding 3×OPT at
    // g = 4. Feed every algorithm the same adversarial span-optimal
    // placement and hold each to its end-to-end pipeline factor.
    let f = fig10_flexible_factor4(4, 60, 20);
    f.bad_schedule.validate(&f.instance).unwrap();
    assert!(within_factor(f.bad_cost, 4, f.opt_upper));
    assert!(f.bad_cost > 3 * f.opt_upper, "the gadget exceeds 3× at g=4");
    let placement = placement_from_starts(&f.instance, f.adversarial_starts.clone()).unwrap();
    for algo in IntervalAlgo::all() {
        let out = solve_with_placement(&f.instance, &placement, algo).unwrap();
        out.schedule.validate(&f.instance).unwrap();
        let cost = out.schedule.total_busy_time(&f.instance);
        let factor = match algo {
            IntervalAlgo::GreedyTracking => 3,
            _ => 4,
        };
        assert!(
            within_factor(cost, factor, f.opt_upper),
            "{} cost {cost} > {factor}×opt_upper {}",
            algo.name(),
            f.opt_upper
        );
        assert!(cost >= busy_lower_bounds(&f.instance).best());
    }
}

#[test]
fn flexible_pipeline_on_traces() {
    let traces: Vec<abt_core::Instance> = vec![
        vm_trace(
            &VmTraceConfig {
                n: 60,
                ..Default::default()
            },
            1,
        ),
        optical_trace(&OpticalTraceConfig::default(), 2),
    ];
    for inst in traces {
        let lb = busy_lower_bounds(&inst).mass;
        for algo in IntervalAlgo::all() {
            let out = solve_flexible(&inst, algo).unwrap();
            out.schedule.validate(&inst).unwrap();
            let cost = out.schedule.total_busy_time(&inst);
            // OPT ≥ max(mass, OPT∞); pipelines guarantee ≤ 4× that.
            let base = lb.max(out.placement.cost);
            assert!(within_factor(cost, 4, base));
        }
    }
}

#[test]
fn fig1_exact_beats_heuristics() {
    let inst = fig1_example();
    let exact = exact_busy_time(&inst, None).unwrap();
    assert_eq!(
        exact.schedule.machine_count(),
        2,
        "the figure packs on two machines"
    );
    for algo in IntervalAlgo::all() {
        let cost = algo.run(&inst).unwrap().total_busy_time(&inst);
        assert!(cost >= exact.cost);
    }
}

#[test]
fn fig6_gadget_guarantees() {
    let f = fig6_greedy_tracking_tight(3, 10);
    // The paper's bad bundling is valid and within 3× of the OPT upper bound.
    f.adversarial_schedule.validate(&f.instance).unwrap();
    assert!(within_factor(f.adversarial_cost, 3, f.opt_upper));
    // Our GreedyTracking on the adversarial placement also stays within 3×.
    let placement = placement_from_starts(&f.instance, f.adversarial_starts.clone()).unwrap();
    let gt = solve_with_placement(&f.instance, &placement, IntervalAlgo::GreedyTracking).unwrap();
    assert!(within_factor(
        gt.schedule.total_busy_time(&f.instance),
        3,
        f.opt_upper
    ));
}

#[test]
fn fig8_exact_matches_paper_opt() {
    let f = fig8_interval_tight(50, 10);
    let exact = exact_busy_time(&f.instance, None).unwrap();
    assert_eq!(exact.cost, f.opt);
    for algo in [IntervalAlgo::KumarRudra, IntervalAlgo::AlicherryBhatia] {
        let cost = algo.run(&f.instance).unwrap().total_busy_time(&f.instance);
        assert!(within_factor(cost, 2, exact.cost));
    }
}

#[test]
fn fig10_bad_schedule_is_a_possible_output_within_4x() {
    let f = fig10_flexible_factor4(4, 60, 20);
    f.bad_schedule.validate(&f.instance).unwrap();
    f.opt_schedule.validate(&f.instance).unwrap();
    assert!(within_factor(f.bad_cost, 4, f.opt_upper));
    assert!(f.bad_cost > 3 * f.opt_upper, "the gadget exceeds 3× at g=4");
}

#[test]
fn span_placement_lower_bounds_bounded_g() {
    for seed in 0..5u64 {
        let cfg = RandomConfig {
            n: 8,
            g: 2,
            horizon: 25,
            max_len: 6,
            slack_factor: 1.5,
        };
        let inst = abt_workloads::random_flexible(&cfg, seed);
        let placement = span_exact(&inst).unwrap();
        // OPT∞ is a lower bound for every valid bounded-g schedule.
        for algo in IntervalAlgo::all() {
            let out = solve_flexible(&inst, algo).unwrap();
            assert!(out.schedule.total_busy_time(&inst) >= placement.cost);
        }
    }
}

#[test]
fn preemptive_beats_or_ties_nonpreemptive() {
    for seed in 0..5u64 {
        let cfg = RandomConfig {
            n: 10,
            g: 3,
            horizon: 40,
            max_len: 8,
            slack_factor: 1.0,
        };
        let inst = abt_workloads::random_flexible(&cfg, seed);
        let unbounded = preemptive_unbounded(&inst);
        validate_unbounded(&inst, &unbounded).unwrap();
        let bounded = preemptive_bounded(&inst);
        bounded.validate(&inst).unwrap();
        // Preemptive OPT∞ ≤ non-preemptive OPT∞.
        let np = span_exact(&inst).unwrap();
        assert!(unbounded.cost <= np.cost);
        // Theorem 7 factor.
        assert!(within_factor(
            bounded.total_busy_time(),
            2,
            preemptive_lower_bound(&inst)
        ));
    }
}

//! # active-busy-time
//!
//! A production-quality Rust implementation of the algorithms in
//!
//! > Jessica Chang, Samir Khuller, Koyel Mukherjee —
//! > *LP Rounding and Combinatorial Algorithms for Minimizing Active and
//! > Busy Time*, SPAA 2014 (full version arXiv:1610.08154).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`core`] — instances, schedules, validators, lower bounds;
//! * [`flow`] — the max-flow substrate;
//! * [`lp`] — an exact-rational simplex solver;
//! * [`active`] — active-time algorithms (minimal-feasible 3-approx,
//!   LP-rounding 2-approx, exact solvers);
//! * [`busy`] — busy-time algorithms (GreedyTracking 3-approx, FirstFit,
//!   Kumar–Rudra, Alicherry–Bhatia, span placement, preemptive);
//! * [`workloads`] — paper gadgets, random families, traces.
//!
//! ## Quickstart
//!
//! ```
//! use active_busy_time::prelude::*;
//!
//! // Active time: 3 jobs, capacity 2, minimize active slots.
//! let inst = Instance::from_triples([(0, 4, 2), (1, 3, 2), (0, 6, 1)], 2).unwrap();
//! let rounded = lp_rounding(&inst).unwrap();
//! assert!(rounded.within_two_lp());
//!
//! // Busy time: pack flexible jobs onto capacity-2 machines.
//! let busy = Instance::from_triples([(0, 10, 3), (2, 8, 4), (5, 15, 2)], 2).unwrap();
//! let out = solve_flexible(&busy, IntervalAlgo::GreedyTracking).unwrap();
//! out.schedule.validate(&busy).unwrap();
//! ```

pub use abt_active as active;
pub use abt_busy as busy;
pub use abt_core as core;
pub use abt_flow as flow;
pub use abt_lp as lp;
pub use abt_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use abt_active::{
        exact_active_time, exact_unit_active_time, lp_rounding, minimal_feasible, ClosingOrder,
    };
    pub use abt_busy::{
        alicherry_bhatia, exact_busy_time, first_fit, greedy_tracking, kumar_rudra,
        preemptive_bounded, preemptive_unbounded, solve_flexible, span_place, FirstFitOrder,
        IntervalAlgo,
    };
    pub use abt_core::{
        active_lower_bound, busy_lower_bounds, ActiveSchedule, BusySchedule, Instance, Interval,
        Job, JobId, PreemptiveSchedule, Time,
    };
}

//! Quickstart: both scheduling models in one file.
//!
//! Run with `cargo run --example quickstart`.

use active_busy_time::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // Active time (one machine, slotted time, ≤ g jobs per active slot).
    // ------------------------------------------------------------------
    let inst = Instance::from_triples(
        [
            (0, 6, 3), // r=0, d=6, p=3
            (1, 5, 2),
            (2, 4, 2),
            (0, 2, 1),
            (3, 8, 2),
        ],
        2,
    )
    .unwrap();

    println!("== active time: {} jobs, g = {} ==", inst.len(), inst.g());
    println!("lower bound: {}", active_lower_bound(&inst));

    // Any minimal feasible solution is a 3-approximation (Theorem 1).
    let minimal = minimal_feasible(&inst, ClosingOrder::LeftToRight).unwrap();
    println!(
        "minimal feasible: {} active slots {:?}",
        minimal.slots.len(),
        minimal.slots
    );

    // LP rounding is a 2-approximation (Theorem 2).
    let rounded = lp_rounding(&inst).unwrap();
    println!(
        "LP rounding: {} active slots (LP = {}, certified ≤ 2·LP: {})",
        rounded.cost,
        rounded.lp_objective,
        rounded.within_two_lp()
    );

    // Exact branch and bound for reference.
    let exact = exact_active_time(&inst, Some(1_000_000)).unwrap();
    println!("optimal: {} active slots", exact.slots.len());

    // ------------------------------------------------------------------
    // Busy time (unbounded machines of capacity g, non-preemptive).
    // ------------------------------------------------------------------
    let busy = Instance::from_triples(
        [
            (0, 10, 3),
            (2, 8, 4),
            (5, 15, 2),
            (0, 4, 2),
            (9, 14, 5),
            (1, 16, 6),
        ],
        2,
    )
    .unwrap();
    println!("\n== busy time: {} jobs, g = {} ==", busy.len(), busy.g());
    let bounds = busy_lower_bounds(&busy);
    println!("mass bound: {}", bounds.mass);

    for algo in IntervalAlgo::all() {
        let out = solve_flexible(&busy, algo).unwrap();
        out.schedule.validate(&busy).unwrap();
        println!(
            "{:16} busy time {:3} on {} machines (placement span = {})",
            algo.name(),
            out.schedule.total_busy_time(&busy),
            out.schedule.machine_count(),
            out.placement.cost,
        );
    }

    // Preemptive variant (§4.4).
    let unbounded = preemptive_unbounded(&busy);
    let bounded = preemptive_bounded(&busy);
    println!(
        "preemptive: OPT∞ = {}, bounded-g 2-approx = {}",
        unbounded.cost,
        bounded.total_busy_time()
    );
}

//! Active-time scheduling: an energy-aware batch machine that powers on
//! for whole time slots (§2–3 of the paper).
//!
//! A shared compute node can run up to `g` jobs per hour-slot and pays for
//! every powered-on hour. Jobs have release times, deadlines, and total
//! work; work may be split across non-consecutive hours (preemption at
//! slot boundaries). We compare the paper's two approximation algorithms
//! against the LP bound and the exact optimum.
//!
//! Run with `cargo run --release --example energy_scheduler`.

use active_busy_time::active::solve_active_lp;
use active_busy_time::prelude::*;
use active_busy_time::workloads::{random_active_feasible, RandomConfig};

fn main() {
    // A day of 24 hour-slots, 14 batch jobs, 3 jobs per hour.
    let cfg = RandomConfig {
        n: 14,
        g: 3,
        horizon: 24,
        max_len: 5,
        slack_factor: 1.5,
    };
    let day = random_active_feasible(&cfg, 99);
    println!(
        "{} jobs over a {}-slot day, {} concurrent jobs per slot",
        day.len(),
        cfg.horizon,
        day.g()
    );
    println!(
        "trivial bound: ⌈total work / g⌉ = {}",
        active_lower_bound(&day)
    );

    let lp = solve_active_lp(&day).unwrap();
    println!("fractional (LP) optimum: {}", lp.objective);

    // Theorem 1: any minimal feasible solution ≤ 3·OPT — order matters in
    // practice, so try several.
    println!("\nminimal feasible solutions (Theorem 1, ≤ 3·OPT):");
    for order in [
        ClosingOrder::LeftToRight,
        ClosingOrder::RightToLeft,
        ClosingOrder::OutsideIn,
        ClosingOrder::CenterOut,
    ] {
        let res = minimal_feasible(&day, order).unwrap();
        res.schedule.validate(&day).unwrap();
        println!("  {order:?}: {} powered-on hours", res.slots.len());
    }

    // Theorem 2: LP rounding ≤ 2·OPT with a certificate.
    let rounded = lp_rounding(&day).unwrap();
    rounded.schedule.validate(&day).unwrap();
    println!(
        "\nLP rounding (Theorem 2): {} hours, certificate cost ≤ 2·LP: {}",
        rounded.cost,
        rounded.within_two_lp()
    );
    println!("charge ledger: {:?}", rounded.charges);

    // Exact optimum for reference.
    match exact_active_time(&day, Some(50_000_000)) {
        Ok(exact) => {
            println!(
                "\nexact optimum: {} hours (search explored {} nodes)",
                exact.slots.len(),
                exact.nodes
            );
            let hours: Vec<_> = exact.slots.iter().collect();
            println!("power on at hours {hours:?}");
        }
        Err(e) => println!("\nexact search skipped: {e}"),
    }
}

//! Optical network design: minimizing OADM fiber cost (§1's second
//! motivation, and the original setting of Kumar–Rudra's algorithm).
//!
//! Lightpath requests occupy contiguous link ranges of a line network;
//! a fiber carries up to `g` wavelengths, and the cost of a fiber is the
//! span of links it must be lit on — exactly busy time for interval jobs.
//!
//! Run with `cargo run --release --example optical_network`.

use active_busy_time::busy::{alicherry_bhatia_run, kumar_rudra_run};
use active_busy_time::prelude::*;
use active_busy_time::workloads::{optical_trace, OpticalTraceConfig};

fn main() {
    let cfg = OpticalTraceConfig {
        n: 100,
        g: 4,
        sites: 50,
    };
    let requests = optical_trace(&cfg, 7);
    println!(
        "{} lightpath requests over {} links, {} wavelengths per fiber",
        requests.len(),
        cfg.sites,
        cfg.g
    );
    let bounds = busy_lower_bounds(&requests);
    println!(
        "lower bounds — mass: {}, span: {}, demand profile: {}\n",
        bounds.mass, bounds.span, bounds.profile
    );

    // The two fiber-minimization 2-approximations, with diagnostics.
    let kr = kumar_rudra_run(&requests).unwrap();
    println!(
        "Kumar–Rudra:      fiber cost {:>4} on {:>2} fibers ({} levels, charges ≤ 2×{})",
        kr.schedule.total_busy_time(&requests),
        kr.schedule.machine_count(),
        kr.levels,
        kr.profile_bound,
    );
    let ab = alicherry_bhatia_run(&requests).unwrap();
    println!(
        "Alicherry–Bhatia: fiber cost {:>4} on {:>2} fibers ({} rounds of 2-flows)",
        ab.schedule.total_busy_time(&requests),
        ab.schedule.machine_count(),
        ab.rounds,
    );
    // The paper's combinatorial 3-approximation and the FirstFit baseline.
    let gt = greedy_tracking(&requests).unwrap();
    println!(
        "GreedyTracking:   fiber cost {:>4} on {:>2} fibers",
        gt.total_busy_time(&requests),
        gt.machine_count()
    );
    let ff = first_fit(&requests, FirstFitOrder::LengthDesc).unwrap();
    println!(
        "FirstFit:         fiber cost {:>4} on {:>2} fibers",
        ff.total_busy_time(&requests),
        ff.machine_count()
    );

    for s in [kr.schedule, ab.schedule, gt, ff] {
        s.validate(&requests).unwrap();
    }
    println!("\nall schedules validated against wavelength capacity and request windows");
}

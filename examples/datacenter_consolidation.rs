//! VM consolidation: the busy-time model applied to the paper's motivating
//! datacenter scenario (§1).
//!
//! VM lease requests arrive over time; each host runs up to `g` VMs
//! simultaneously, and a host consumes power exactly while at least one VM
//! is on it (its *busy time*). Batch leases are flexible (they may start
//! anywhere in a window); interactive leases are rigid. We compare the
//! schedulers on a synthetic trace and report energy-style numbers.
//!
//! Run with `cargo run --release --example datacenter_consolidation`.

use active_busy_time::prelude::*;
use active_busy_time::workloads::{vm_trace, VmTraceConfig};

fn main() {
    let cfg = VmTraceConfig {
        n: 120,
        g: 8,
        mean_interarrival: 8.0,
        mean_duration: 50.0,
        flexible_fraction: 0.5,
        slack_factor: 2.0,
    };
    let trace = vm_trace(&cfg, 2026);
    let flexible = trace.jobs().iter().filter(|j| j.slack() > 0).count();
    println!(
        "trace: {} VM leases ({} flexible), hosts run up to {} VMs",
        trace.len(),
        flexible,
        trace.g()
    );
    let bounds = busy_lower_bounds(&trace);
    println!("mass lower bound on powered-on host-time: {}", bounds.mass);

    let naive: i64 = trace.jobs().iter().map(|j| j.length).sum();
    println!("no consolidation (one host per VM): {naive} host-ticks\n");

    println!(
        "{:<18} {:>12} {:>8} {:>12}",
        "scheduler", "host-ticks", "hosts", "vs no-consol"
    );
    for algo in IntervalAlgo::all() {
        let out = solve_flexible(&trace, algo).unwrap();
        out.schedule.validate(&trace).unwrap();
        let cost = out.schedule.total_busy_time(&trace);
        println!(
            "{:<18} {:>12} {:>8} {:>11.1}%",
            algo.name(),
            cost,
            out.schedule.machine_count(),
            100.0 * cost as f64 / naive as f64
        );
    }

    // If leases were preemptable (checkpoint/restore migration), §4.4's
    // algorithms apply.
    let unbounded = preemptive_unbounded(&trace);
    let bounded = preemptive_bounded(&trace);
    println!(
        "\nwith VM migration (preemptive): ideal {} host-ticks, bounded-g schedule {} host-ticks",
        unbounded.cost,
        bounded.total_busy_time()
    );
}
